package maxent

import (
	"errors"
	"math"
	"math/rand"
	"strconv"
	"strings"
	"testing"

	"privacymaxent/internal/bucket"
	"privacymaxent/internal/constraint"
	"privacymaxent/internal/dataset"
	"privacymaxent/internal/solver"
)

// paperSystem builds the running example's space and invariant system.
func paperSystem(t *testing.T) (*dataset.Table, *bucket.Bucketized, *constraint.Space, *constraint.System) {
	t.Helper()
	tbl := dataset.PaperExample()
	d, err := bucket.FromPartition(tbl, dataset.PaperBuckets())
	if err != nil {
		t.Fatal(err)
	}
	sp := constraint.NewSpace(d)
	sys := constraint.DataInvariants(sp, constraint.InvariantOptions{DropRedundant: true})
	return tbl, d, sp, sys
}

// knowledgeFor builds a DistributionKnowledge pinning P(sa | full QI tuple
// of qid) = p, conditioning on every QI attribute.
func knowledgeFor(tbl *dataset.Table, d *bucket.Bucketized, qid, sa int, p float64) constraint.DistributionKnowledge {
	qiIdx := tbl.Schema().QIIndices()
	codes := d.Universe().Codes(qid)
	return constraint.DistributionKnowledge{
		Attrs:  append([]int(nil), qiIdx...),
		Values: append([]int(nil), codes...),
		SA:     sa,
		P:      p,
	}
}

func TestUniformSatisfiesInvariants(t *testing.T) {
	_, _, sp, sys := paperSystem(t)
	x := Uniform(sp)
	if v := sys.MaxViolation(x); v > 1e-12 {
		t.Fatalf("uniform solution violates invariants by %g", v)
	}
	var sum float64
	for _, v := range x {
		sum += v
	}
	if math.Abs(sum-1) > 1e-12 {
		t.Fatalf("uniform mass = %g, want 1", sum)
	}
}

// TestConsistencyTheorem verifies Theorem 5: with no background
// knowledge, the LBFGS dual solution coincides with the closed-form
// within-bucket independent distribution of Eq. (9).
func TestConsistencyTheorem(t *testing.T) {
	_, _, sp, sys := paperSystem(t)
	want := Uniform(sp)
	for _, alg := range []Algorithm{LBFGS, SteepestDescent, GIS, Newton, IIS} {
		sol, err := Solve(sys, Options{Algorithm: alg, Solver: solver.Options{MaxIterations: 5000, GradTol: 1e-10}})
		if err != nil {
			t.Fatalf("%v: %v", alg, err)
		}
		for i := range want {
			if math.Abs(sol.X[i]-want[i]) > 1e-6 {
				t.Fatalf("%v: x[%d] = %g, want %g (closed form)", alg, i, sol.X[i], want[i])
			}
		}
		if sol.Stats.MaxViolation > 1e-7 {
			t.Fatalf("%v: violation %g", alg, sol.Stats.MaxViolation)
		}
	}
}

// TestSection31ExactInference replays the paper's Sec. 3.1 example: with
// P(s1|q2) = 0 and P(s1 or s2 | q3) = 0, bucket 1's assignment is fully
// determined — q3 maps to s3, q2 maps to s2, and the two q1 records map to
// s1 and s2. Presolve alone pins all of bucket 1.
func TestSection31ExactInference(t *testing.T) {
	tbl, d, _, sys := paperSystem(t)
	sa := tbl.Schema().SA()
	s1 := sa.MustCode("Breast Cancer")
	s2 := sa.MustCode("Flu")
	s3 := sa.MustCode("Pneumonia")
	ks := []constraint.DistributionKnowledge{
		knowledgeFor(tbl, d, 1, s1, 0), // P(s1 | q2) = 0
		knowledgeFor(tbl, d, 2, s1, 0), // P(s1 | q3) = 0   } together: P(s1 or s2 | q3) = 0
		knowledgeFor(tbl, d, 2, s2, 0), // P(s2 | q3) = 0   }
	}
	if err := constraint.AddKnowledge(sys, ks...); err != nil {
		t.Fatal(err)
	}
	sol, err := Solve(sys, Options{})
	if err != nil {
		t.Fatal(err)
	}
	check := func(qid, s, b int, want float64) {
		t.Helper()
		if got := sol.Joint(constraint.Term{QID: qid, SA: s, Bucket: b}); math.Abs(got-want) > 1e-9 {
			t.Fatalf("P(q%d, s%d, %d) = %g, want %g", qid+1, s+1, b+1, got, want)
		}
	}
	check(2, s3, 0, 0.1) // q3 -> s3
	check(2, s1, 0, 0)
	check(2, s2, 0, 0)
	check(1, s2, 0, 0.1) // q2 -> s2
	check(1, s1, 0, 0)
	check(1, s3, 0, 0)
	check(0, s1, 0, 0.1) // one q1 -> s1
	check(0, s2, 0, 0.1) // the other q1 -> s2
	check(0, s3, 0, 0)
	if sol.Stats.MaxViolation > 1e-7 {
		t.Fatalf("violation %g", sol.Stats.MaxViolation)
	}
}

// TestBreastCancerInference replays the introduction's motivating attack:
// knowing P(Breast Cancer | male) = 0, the adversary concludes that the
// only female in bucket 1 (Cathy, q2) and in bucket 2 (Grace, q4) has
// Breast Cancer.
func TestBreastCancerInference(t *testing.T) {
	tbl, _, _, sys := paperSystem(t)
	gender := tbl.Schema().Index("Gender")
	male := tbl.Schema().Attr(gender).MustCode("male")
	s1 := tbl.Schema().SA().MustCode("Breast Cancer")
	k := constraint.DistributionKnowledge{Attrs: []int{gender}, Values: []int{male}, SA: s1, P: 0}
	if err := constraint.AddKnowledge(sys, k); err != nil {
		t.Fatal(err)
	}
	sol, err := Solve(sys, Options{})
	if err != nil {
		t.Fatal(err)
	}
	post := sol.Posterior()
	// q2 = Cathy/Helen's tuple {female, college}: bucket 1's s1 must bind
	// to its only female... but q2 also appears in bucket 3 (Helen).
	// P(s1 | q2) = P(q2,s1,1)/P(q2) = 0.1/0.2 = 0.5.
	if got := post.P(1, s1); math.Abs(got-0.5) > 1e-6 {
		t.Fatalf("P(BreastCancer | q2) = %g, want 0.5", got)
	}
	// q4 = Grace {female, junior} appears only in bucket 2: certainty.
	if got := post.P(3, s1); math.Abs(got-1) > 1e-6 {
		t.Fatalf("P(BreastCancer | q4) = %g, want 1", got)
	}
	// No male tuple retains Breast Cancer mass.
	for _, qid := range []int{0, 2, 5} {
		if got := post.P(qid, s1); got > 1e-9 {
			t.Fatalf("P(BreastCancer | male q%d) = %g, want 0", qid+1, got)
		}
	}
}

func TestSolveWithKnowledgeAllAlgorithms(t *testing.T) {
	// P(s3 | q3) = 0.5 (the Sec. 5.5 example) is feasible and couples
	// buckets 1 and 2. All algorithms must agree on the solution.
	var ref []float64
	for _, alg := range []Algorithm{LBFGS, SteepestDescent, GIS, Newton, IIS} {
		tbl, d, _, sys := paperSystem(t)
		s3 := tbl.Schema().SA().MustCode("Pneumonia")
		if err := constraint.AddKnowledge(sys, knowledgeFor(tbl, d, 2, s3, 0.5)); err != nil {
			t.Fatal(err)
		}
		sol, err := Solve(sys, Options{Algorithm: alg, Solver: solver.Options{MaxIterations: 20000, GradTol: 1e-10}})
		if err != nil {
			t.Fatalf("%v: %v", alg, err)
		}
		if sol.Stats.MaxViolation > 1e-7 {
			t.Fatalf("%v: violation %g", alg, sol.Stats.MaxViolation)
		}
		// The knowledge must hold in the solution.
		got := sol.Joint(constraint.Term{QID: 2, SA: s3, Bucket: 0}) + sol.Joint(constraint.Term{QID: 2, SA: s3, Bucket: 1})
		if math.Abs(got-0.1) > 1e-7 {
			t.Fatalf("%v: P(q3,s3) = %g, want 0.1", alg, got)
		}
		if ref == nil {
			ref = sol.X
			continue
		}
		for i := range ref {
			if math.Abs(sol.X[i]-ref[i]) > 1e-5 {
				t.Fatalf("%v: x[%d] = %g, LBFGS got %g", alg, i, sol.X[i], ref[i])
			}
		}
	}
}

func TestDecomposeMatchesFullSolve(t *testing.T) {
	tbl, d, _, sysFull := paperSystem(t)
	_, _, _, sysDec := paperSystem(t)
	s3 := tbl.Schema().SA().MustCode("Pneumonia")
	k := knowledgeFor(tbl, d, 2, s3, 0.5)
	if err := constraint.AddKnowledge(sysFull, k); err != nil {
		t.Fatal(err)
	}
	if err := constraint.AddKnowledge(sysDec, k); err != nil {
		t.Fatal(err)
	}
	full, err := Solve(sysFull, Options{Solver: solver.Options{GradTol: 1e-11}})
	if err != nil {
		t.Fatal(err)
	}
	dec, err := Solve(sysDec, Options{Decompose: true, Solver: solver.Options{GradTol: 1e-11}})
	if err != nil {
		t.Fatal(err)
	}
	if dec.Stats.IrrelevantBuckets != 1 {
		t.Fatalf("irrelevant buckets = %d, want 1 (bucket 3)", dec.Stats.IrrelevantBuckets)
	}
	if dec.Stats.ActiveVariables >= full.Stats.ActiveVariables {
		t.Fatalf("decomposition did not shrink the problem: %d vs %d", dec.Stats.ActiveVariables, full.Stats.ActiveVariables)
	}
	for i := range full.X {
		if math.Abs(full.X[i]-dec.X[i]) > 1e-6 {
			t.Fatalf("x[%d]: full %g vs decomposed %g", i, full.X[i], dec.X[i])
		}
	}
}

func TestDecomposeNoKnowledgeShortCircuits(t *testing.T) {
	_, _, sp, sys := paperSystem(t)
	sol, err := Solve(sys, Options{Decompose: true})
	if err != nil {
		t.Fatal(err)
	}
	if sol.Stats.Iterations != 0 || sol.Stats.ActiveVariables != 0 {
		t.Fatalf("expected closed-form short circuit: %+v", sol.Stats)
	}
	if sol.Stats.IrrelevantBuckets != sp.Data().NumBuckets() {
		t.Fatalf("irrelevant = %d, want all %d", sol.Stats.IrrelevantBuckets, sp.Data().NumBuckets())
	}
	want := Uniform(sp)
	for i := range want {
		if sol.X[i] != want[i] {
			t.Fatalf("x[%d] = %g, want closed form %g", i, sol.X[i], want[i])
		}
	}
}

func TestInfeasibleContradictoryKnowledge(t *testing.T) {
	tbl, d, _, sys := paperSystem(t)
	s5 := tbl.Schema().SA().MustCode("Lung Cancer")
	// q5 = Iris {female, graduate} appears only in bucket 3 where s5 also
	// appears once: P(s5|q5)=1 pins the term to 0.1, P(s5|q5)=0 pins it
	// to 0 — a contradiction presolve must surface.
	if err := constraint.AddKnowledge(sys,
		knowledgeFor(tbl, d, 4, s5, 1),
		knowledgeFor(tbl, d, 4, s5, 0),
	); err != nil {
		t.Fatal(err)
	}
	_, err := Solve(sys, Options{})
	var inf *ErrInfeasible
	if !errors.As(err, &inf) {
		t.Fatalf("err = %v, want ErrInfeasible", err)
	}
}

func TestInfeasibleExcessProbability(t *testing.T) {
	// P(s1 | q2) = 1 demands joint mass 0.2 for (q2, s1), but s1 only
	// coexists with q2 in bucket 1, which holds s1 mass 0.1. The dual is
	// unbounded; Solve must not report a converged, feasible solution.
	tbl, d, _, sys := paperSystem(t)
	s1 := tbl.Schema().SA().MustCode("Breast Cancer")
	if err := constraint.AddKnowledge(sys, knowledgeFor(tbl, d, 1, s1, 1)); err != nil {
		t.Fatal(err)
	}
	sol, err := Solve(sys, Options{Solver: solver.Options{MaxIterations: 300}})
	if err != nil {
		var inf *ErrInfeasible
		if errors.As(err, &inf) {
			return // presolve caught it: fine
		}
		t.Fatal(err)
	}
	if sol.Stats.Converged && sol.Stats.MaxViolation < 1e-6 {
		t.Fatalf("infeasible system reported solved: %+v", sol.Stats)
	}
}

func TestPosteriorRowsSumToOne(t *testing.T) {
	tbl, d, _, sys := paperSystem(t)
	s3 := tbl.Schema().SA().MustCode("Pneumonia")
	if err := constraint.AddKnowledge(sys, knowledgeFor(tbl, d, 2, s3, 0.5)); err != nil {
		t.Fatal(err)
	}
	sol, err := Solve(sys, Options{})
	if err != nil {
		t.Fatal(err)
	}
	post := sol.Posterior()
	for qid := 0; qid < d.Universe().Len(); qid++ {
		var sum float64
		for s := 0; s < post.NumSA(); s++ {
			sum += post.P(qid, s)
		}
		if math.Abs(sum-1) > 1e-7 {
			t.Fatalf("posterior row q%d sums to %g", qid+1, sum)
		}
	}
}

func TestPosteriorNoKnowledgeMatchesBucketFormula(t *testing.T) {
	// Without knowledge, P(s|q) = Σ_b P(q,b)·(share of s in b) / P(q) —
	// the standard formula existing metrics use (Sec. 3.1 + Eq. 9).
	_, d, sp, sys := paperSystem(t)
	sol, err := Solve(sys, Options{})
	if err != nil {
		t.Fatal(err)
	}
	post := sol.Posterior()
	u := d.Universe()
	for qid := 0; qid < u.Len(); qid++ {
		for s := 0; s < d.SACardinality(); s++ {
			var want float64
			for b := 0; b < d.NumBuckets(); b++ {
				if d.PQB(qid, b) == 0 {
					continue
				}
				share := float64(d.Bucket(b).SACount(s)) / float64(d.Bucket(b).Size())
				want += d.PQB(qid, b) * share
			}
			want /= u.P(qid)
			if got := post.P(qid, s); math.Abs(got-want) > 1e-6 {
				t.Fatalf("P(s%d|q%d) = %g, want %g", s+1, qid+1, got, want)
			}
		}
	}
	_ = sp
}

func TestEntropyIdentities(t *testing.T) {
	_, d, _, sys := paperSystem(t)
	sol, err := Solve(sys, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// H(S|Q,B) = H(Q,S,B) − H(Q,B) (the identity Sec. 3.2 uses to swap
	// objectives).
	var hqb float64
	for b := 0; b < d.NumBuckets(); b++ {
		for _, q := range d.Bucket(b).DistinctQIDs() {
			p := d.PQB(q, b)
			if p > 0 {
				hqb -= p * math.Log2(p)
			}
		}
	}
	joint := sol.JointEntropy()
	cond := sol.ConditionalEntropy()
	if math.Abs(joint-hqb-cond) > 1e-6 {
		t.Fatalf("H(Q,S,B)=%g, H(Q,B)=%g, H(S|Q,B)=%g: identity violated", joint, hqb, cond)
	}
	if cond <= 0 {
		t.Fatalf("conditional entropy %g, want > 0", cond)
	}
}

// TestKnowledgeReducesEntropy: adding (consistent) knowledge can only
// lower the maximum achievable entropy.
func TestKnowledgeReducesEntropy(t *testing.T) {
	tbl, d, _, sysPlain := paperSystem(t)
	plain, err := Solve(sysPlain, Options{})
	if err != nil {
		t.Fatal(err)
	}
	_, _, _, sysK := paperSystem(t)
	s3 := tbl.Schema().SA().MustCode("Pneumonia")
	if err := constraint.AddKnowledge(sysK, knowledgeFor(tbl, d, 2, s3, 1)); err != nil {
		t.Fatal(err)
	}
	withK, err := Solve(sysK, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if withK.JointEntropy() >= plain.JointEntropy() {
		t.Fatalf("entropy with knowledge %g >= without %g", withK.JointEntropy(), plain.JointEntropy())
	}
}

func TestAlgorithmString(t *testing.T) {
	if LBFGS.String() != "lbfgs" || SteepestDescent.String() != "steepest" || GIS.String() != "gis" || Newton.String() != "newton" || IIS.String() != "iis" {
		t.Fatal("Algorithm.String mismatch")
	}
	if got := Algorithm(9).String(); got != "Algorithm(9)" {
		t.Fatalf("unknown algorithm = %q", got)
	}
}

func TestJointOutsideSpaceIsZero(t *testing.T) {
	_, _, _, sys := paperSystem(t)
	sol, err := Solve(sys, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// q1 never appears in bucket 3.
	if got := sol.Joint(constraint.Term{QID: 0, SA: 1, Bucket: 2}); got != 0 {
		t.Fatalf("out-of-space joint = %g, want 0", got)
	}
}

// TestRandomFeasibleKnowledge is the integration property test: on random
// bucketized data with knowledge derived from the (feasible by
// construction) original table, the solver converges, stays non-negative,
// and satisfies every constraint.
func TestRandomFeasibleKnowledge(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 12; trial++ {
		tbl := randomTestTable(rng, 30+rng.Intn(40), 2, 2, 5)
		d, partition, err := bucket.Anatomize(tbl, bucket.Options{L: 3, ExemptMostFrequent: true})
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		sp := constraint.NewSpace(d)
		sys := constraint.DataInvariants(sp, constraint.InvariantOptions{DropRedundant: true})
		truth, err := dataset.TrueConditional(tbl, d.Universe())
		if err != nil {
			t.Fatal(err)
		}
		// Up to 4 true-conditional rules (feasible: the original data
		// satisfies them alongside all invariants).
		u := d.Universe()
		for i := 0; i < 4; i++ {
			qid := rng.Intn(u.Len())
			sa := rng.Intn(d.SACardinality())
			k := knowledgeFor(tbl, d, qid, sa, truth.P(qid, sa))
			if err := constraint.AddKnowledge(sys, k); err != nil {
				t.Fatalf("trial %d: %v", trial, err)
			}
		}
		sol, err := Solve(sys, Options{Decompose: trial%2 == 0, Solver: solver.Options{MaxIterations: 3000, GradTol: 1e-9}})
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if sol.Stats.MaxViolation > 1e-5 {
			t.Fatalf("trial %d: violation %g (converged=%v)", trial, sol.Stats.MaxViolation, sol.Stats.Converged)
		}
		for i, v := range sol.X {
			if v < -1e-12 {
				t.Fatalf("trial %d: x[%d] = %g < 0", trial, i, v)
			}
		}
		_ = partition
	}
}

// randomTestTable builds a random microdata table (same shape as the
// constraint package's helper).
func randomTestTable(rng *rand.Rand, rows, nQI, qiCard, saCard int) *dataset.Table {
	attrs := make([]*dataset.Attribute, 0, nQI+1)
	for i := 0; i < nQI; i++ {
		dom := make([]string, qiCard)
		for v := range dom {
			dom[v] = strconv.Itoa(v)
		}
		attrs = append(attrs, dataset.NewAttribute("Q"+strconv.Itoa(i), dataset.QuasiIdentifier, dom))
	}
	saDom := make([]string, saCard)
	for v := range saDom {
		saDom[v] = "s" + strconv.Itoa(v)
	}
	attrs = append(attrs, dataset.NewAttribute("SA", dataset.Sensitive, saDom))
	tbl := dataset.NewTable(dataset.MustSchema(attrs...))
	row := make([]int, nQI+1)
	for r := 0; r < rows; r++ {
		for i := 0; i < nQI; i++ {
			row[i] = rng.Intn(qiCard)
		}
		s := rng.Intn(saCard)
		if rng.Intn(3) == 0 {
			s = 0
		}
		row[nQI] = s
		if err := tbl.AppendCoded(row); err != nil {
			panic(err)
		}
	}
	return tbl
}

// TestComponentDecomposition verifies the connected-component split: two
// knowledge statements touching disjoint bucket sets yield two
// independent sub-problems whose combined solution matches the full
// solve.
func TestComponentDecomposition(t *testing.T) {
	tbl, d, _, sysFull := paperSystem(t)
	_, _, _, sysDec := paperSystem(t)
	s3 := tbl.Schema().SA().MustCode("Pneumonia")
	s5 := tbl.Schema().SA().MustCode("Lung Cancer")
	ks := []constraint.DistributionKnowledge{
		knowledgeFor(tbl, d, 2, s3, 0.5), // q3: buckets 1, 2
		knowledgeFor(tbl, d, 4, s5, 0.5), // q5: bucket 3 only
	}
	if err := constraint.AddKnowledge(sysFull, ks...); err != nil {
		t.Fatal(err)
	}
	if err := constraint.AddKnowledge(sysDec, ks...); err != nil {
		t.Fatal(err)
	}
	full, err := Solve(sysFull, Options{Solver: solver.Options{GradTol: 1e-11}})
	if err != nil {
		t.Fatal(err)
	}
	dec, err := Solve(sysDec, Options{Decompose: true, Solver: solver.Options{GradTol: 1e-11}})
	if err != nil {
		t.Fatal(err)
	}
	if dec.Stats.Components != 2 {
		t.Fatalf("components = %d, want 2 ({b1,b2} and {b3})", dec.Stats.Components)
	}
	if dec.Stats.IrrelevantBuckets != 0 {
		t.Fatalf("irrelevant = %d, want 0", dec.Stats.IrrelevantBuckets)
	}
	for i := range full.X {
		if math.Abs(full.X[i]-dec.X[i]) > 1e-6 {
			t.Fatalf("x[%d]: full %g vs decomposed %g", i, full.X[i], dec.X[i])
		}
	}
}

// TestParallelComponentsMatchSequential runs a many-component problem
// with and without worker goroutines.
func TestParallelComponentsMatchSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(101))
	tbl := randomTestTable(rng, 120, 3, 5, 6)
	d, _, err := bucket.Anatomize(tbl, bucket.Options{L: 3, ExemptMostFrequent: true})
	if err != nil {
		t.Fatal(err)
	}
	truth, err := dataset.TrueConditional(tbl, d.Universe())
	if err != nil {
		t.Fatal(err)
	}
	buildSys := func() *constraint.System {
		sp := constraint.NewSpace(d)
		sys := constraint.DataInvariants(sp, constraint.InvariantOptions{DropRedundant: true})
		u := d.Universe()
		for qid := 0; qid < u.Len(); qid += 3 {
			for s := 0; s < d.SACardinality(); s++ {
				if truth.P(qid, s) > 0 {
					k := knowledgeFor(tbl, d, qid, s, truth.P(qid, s))
					if err := constraint.AddKnowledge(sys, k); err != nil {
						t.Fatal(err)
					}
					break
				}
			}
		}
		return sys
	}
	seq, err := Solve(buildSys(), Options{Decompose: true, Solver: solver.Options{GradTol: 1e-10}})
	if err != nil {
		t.Fatal(err)
	}
	par, err := Solve(buildSys(), Options{Decompose: true, Workers: 4, Solver: solver.Options{GradTol: 1e-10}})
	if err != nil {
		t.Fatal(err)
	}
	if seq.Stats.Components < 2 {
		t.Fatalf("test needs multiple components, got %d", seq.Stats.Components)
	}
	if par.Stats.Components != seq.Stats.Components {
		t.Fatalf("components differ: %d vs %d", par.Stats.Components, seq.Stats.Components)
	}
	for i := range seq.X {
		if math.Abs(seq.X[i]-par.X[i]) > 1e-6 {
			t.Fatalf("x[%d]: sequential %g vs parallel %g", i, seq.X[i], par.X[i])
		}
	}
	if seq.Stats.MaxViolation > 1e-6 || par.Stats.MaxViolation > 1e-6 {
		t.Fatalf("violations: %g, %g", seq.Stats.MaxViolation, par.Stats.MaxViolation)
	}
}

// TestDualHessianMatchesFiniteDifferences validates the analytic Hessian
// A·diag(x(λ))·Aᵀ that Newton's method consumes.
func TestDualHessianMatchesFiniteDifferences(t *testing.T) {
	_, _, _, sys := paperSystem(t)
	m, rhs := sys.Matrix()
	obj := newDualObjective(m, rhs)
	dim := obj.Dim()
	rng := rand.New(rand.NewSource(6))
	lambda := make([]float64, dim)
	for i := range lambda {
		lambda[i] = rng.NormFloat64() * 0.1
	}
	h := make([][]float64, dim)
	for i := range h {
		h[i] = make([]float64, dim)
	}
	obj.Hessian(lambda, h)

	const eps = 1e-6
	gPlus := make([]float64, dim)
	gMinus := make([]float64, dim)
	pt := make([]float64, dim)
	for j := 0; j < dim; j++ {
		copy(pt, lambda)
		pt[j] += eps
		obj.Eval(pt, gPlus)
		pt[j] -= 2 * eps
		obj.Eval(pt, gMinus)
		for i := 0; i < dim; i++ {
			fd := (gPlus[i] - gMinus[i]) / (2 * eps)
			if math.Abs(fd-h[i][j]) > 1e-4*(1+math.Abs(fd)) {
				t.Fatalf("H[%d][%d] = %g, finite diff %g", i, j, h[i][j], fd)
			}
		}
	}
	// Symmetry.
	for i := 0; i < dim; i++ {
		for j := 0; j < dim; j++ {
			if math.Abs(h[i][j]-h[j][i]) > 1e-12 {
				t.Fatalf("Hessian asymmetric at (%d,%d)", i, j)
			}
		}
	}
}

// TestDualsExposed: the LBFGS path reports one multiplier per surviving
// constraint, and tightening knowledge shows up as a large-magnitude
// multiplier on the knowledge row.
func TestDualsExposed(t *testing.T) {
	tbl, d, _, sys := paperSystem(t)
	s3 := tbl.Schema().SA().MustCode("Pneumonia")
	if err := constraint.AddKnowledge(sys, knowledgeFor(tbl, d, 2, s3, 0.9)); err != nil {
		t.Fatal(err)
	}
	sol, err := Solve(sys, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(sol.Duals) == 0 {
		t.Fatal("no duals reported")
	}
	var knowledgeDual *ConstraintDual
	for i := range sol.Duals {
		if sol.Duals[i].Kind == constraint.Knowledge {
			knowledgeDual = &sol.Duals[i]
		}
	}
	if knowledgeDual == nil {
		t.Fatal("knowledge constraint has no dual")
	}
	// P(s3|q3) = 0.9 pulls hard against the data (closed form gives
	// ~0.42): the multiplier must be decidedly non-zero.
	if math.Abs(knowledgeDual.Lambda) < 0.1 {
		t.Fatalf("knowledge dual %g suspiciously small", knowledgeDual.Lambda)
	}
	// GIS reports no duals.
	_, _, _, sys2 := paperSystem(t)
	if err := constraint.AddKnowledge(sys2, knowledgeFor(tbl, d, 2, s3, 0.9)); err != nil {
		t.Fatal(err)
	}
	gisSol, err := Solve(sys2, Options{Algorithm: GIS, Solver: solver.Options{MaxIterations: 4000}})
	if err != nil {
		t.Fatal(err)
	}
	if len(gisSol.Duals) != 0 {
		t.Fatalf("GIS reported %d duals, want 0", len(gisSol.Duals))
	}
}

// TestMaxEntDominatesFeasiblePoints is the defining property of the
// method: among all feasible distributions, the solver's has maximal
// entropy. The original data's assignment is feasible (it satisfies the
// invariants and any truth-derived knowledge), so its entropy can never
// exceed the solution's.
func TestMaxEntDominatesFeasiblePoints(t *testing.T) {
	entropy := func(x []float64) float64 {
		var h float64
		for _, v := range x {
			if v > 0 {
				h -= v * math.Log2(v)
			}
		}
		return h
	}
	rng := rand.New(rand.NewSource(55))
	for trial := 0; trial < 8; trial++ {
		tbl := randomTestTable(rng, 30+rng.Intn(30), 2, 2, 5)
		d, partition, err := bucket.Anatomize(tbl, bucket.Options{L: 3, ExemptMostFrequent: true})
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		sp := constraint.NewSpace(d)
		sys := constraint.DataInvariants(sp, constraint.InvariantOptions{DropRedundant: true})
		truth, err := dataset.TrueConditional(tbl, d.Universe())
		if err != nil {
			t.Fatal(err)
		}
		// Two truth-consistent knowledge statements.
		u := d.Universe()
		for i := 0; i < 2; i++ {
			qid := rng.Intn(u.Len())
			for s := 0; s < d.SACardinality(); s++ {
				if truth.P(qid, s) > 0 {
					if err := constraint.AddKnowledge(sys, knowledgeFor(tbl, d, qid, s, truth.P(qid, s))); err != nil {
						t.Fatal(err)
					}
					break
				}
			}
		}
		sol, err := Solve(sys, Options{Solver: solver.Options{MaxIterations: 4000, GradTol: 1e-10}})
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		// The true data is one feasible assignment.
		truthAssignment, err := constraint.AssignmentFromTable(tbl, d, partition)
		if err != nil {
			t.Fatal(err)
		}
		xTruth := truthAssignment.Vector(sp)
		if hT, hS := entropy(xTruth), entropy(sol.X); hT > hS+1e-6 {
			t.Fatalf("trial %d: truth entropy %g exceeds maxent %g", trial, hT, hS)
		}
		// Random feasible assignments (they satisfy the invariants; they
		// may violate the knowledge, in which case skip) also never beat
		// the solution.
		for inner := 0; inner < 5; inner++ {
			a := constraint.RandomAssignment(d, rng)
			x := a.Vector(sp)
			if sys.MaxViolation(x) > 1e-9 {
				continue
			}
			if hA, hS := entropy(x), entropy(sol.X); hA > hS+1e-6 {
				t.Fatalf("trial %d: feasible assignment entropy %g exceeds maxent %g", trial, hA, hS)
			}
		}
	}
}

func TestConditionalInBucket(t *testing.T) {
	_, d, _, sys := paperSystem(t)
	sol, err := Solve(sys, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Without knowledge, P(S|q,b) is the bucket's SA share (Eq. 1).
	for b := 0; b < d.NumBuckets(); b++ {
		bk := d.Bucket(b)
		for _, qid := range bk.DistinctQIDs() {
			row := sol.ConditionalInBucket(qid, b)
			var sum float64
			for s := 0; s < d.SACardinality(); s++ {
				want := float64(bk.SACount(s)) / float64(bk.Size())
				if math.Abs(row[s]-want) > 1e-6 {
					t.Fatalf("P(s%d|q%d,b%d) = %g, want %g", s+1, qid+1, b+1, row[s], want)
				}
				sum += row[s]
			}
			if math.Abs(sum-1) > 1e-6 {
				t.Fatalf("row sums to %g", sum)
			}
		}
	}
	// Absent (q, b) pairs give zeros.
	row := sol.ConditionalInBucket(0, 2) // q1 not in bucket 3
	for s, v := range row {
		if v != 0 {
			t.Fatalf("ghost mass at s%d: %g", s+1, v)
		}
	}
}

// TestSolveConstraintsDirect exercises the low-level entry point the
// pseudonym model builds on: a tiny 3-variable system with one pinned
// variable and two coupled ones.
func TestSolveConstraintsDirect(t *testing.T) {
	cons := []constraint.Constraint{
		{Kind: constraint.QIInvariant, Label: "mass", Terms: []int{0, 1}, Coeffs: []float64{1, 1}, RHS: 0.6},
		{Kind: constraint.Knowledge, Label: "pin", Terms: []int{2}, Coeffs: []float64{1}, RHS: 0.4},
	}
	init := []float64{0, 0, 0}
	x, stats, err := SolveConstraints(3, cons, init, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Maximum entropy splits the coupled mass evenly; the singleton is
	// pinned by presolve.
	if math.Abs(x[0]-0.3) > 1e-6 || math.Abs(x[1]-0.3) > 1e-6 {
		t.Fatalf("x = %v, want [0.3 0.3 0.4]", x)
	}
	if math.Abs(x[2]-0.4) > 1e-12 {
		t.Fatalf("pinned x[2] = %g", x[2])
	}
	if stats.FixedVariables != 1 || stats.ActiveVariables != 2 {
		t.Fatalf("stats = %+v", stats)
	}
	if stats.MaxViolation > 1e-8 {
		t.Fatalf("violation %g", stats.MaxViolation)
	}
	// Arity guard.
	if _, _, err := SolveConstraints(3, cons, []float64{0}, Options{}); err == nil {
		t.Fatal("expected init-length error")
	}
	// Infeasible systems surface the typed error with a message.
	bad := []constraint.Constraint{
		{Kind: constraint.Knowledge, Label: "a", Terms: []int{0}, Coeffs: []float64{1}, RHS: 0.1},
		{Kind: constraint.Knowledge, Label: "b", Terms: []int{0}, Coeffs: []float64{1}, RHS: 0.9},
	}
	_, _, err = SolveConstraints(1, bad, []float64{0}, Options{})
	var inf *ErrInfeasible
	if !errors.As(err, &inf) {
		t.Fatalf("err = %v, want ErrInfeasible", err)
	}
	if inf.Error() == "" || !strings.Contains(inf.Error(), "infeasible") {
		t.Fatalf("error message = %q", inf.Error())
	}
}

// TestSolutionSpaceAccessor covers the Space getter.
func TestSolutionSpaceAccessor(t *testing.T) {
	_, _, sp, sys := paperSystem(t)
	sol, err := Solve(sys, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if sol.Space() != sp {
		t.Fatal("Space accessor mismatch")
	}
}
