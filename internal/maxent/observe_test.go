package maxent

import (
	"bytes"
	"context"
	"encoding/json"
	"log/slog"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"privacymaxent/internal/constraint"
	"privacymaxent/internal/solver"
	"privacymaxent/internal/telemetry"
)

// syncWriter guards a buffer against the concurrent solve goroutines.
type syncWriter struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (w *syncWriter) Write(p []byte) (int, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.buf.Write(p)
}

func (w *syncWriter) String() string {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.buf.String()
}

// TestConcurrentSolveEventStreams runs decomposed solves concurrently
// through one shared slog JSON handler, each solve tagged via
// Logger.With, and asserts every solve's event stream arrives complete
// and uncorrupted: one solve.start and one solve.done per solve, at
// least one presolve and one component.done, and every line valid JSON.
// Run under -race this also proves the telemetry bridge itself is safe
// for parallel solves.
func TestConcurrentSolveEventStreams(t *testing.T) {
	const solves = 8
	out := &syncWriter{}
	base := slog.New(slog.NewJSONHandler(out, nil))

	var wg sync.WaitGroup
	for i := 0; i < solves; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			tbl, d, _, sys := paperSystem(t)
			s3 := tbl.Schema().SA().MustCode("Pneumonia")
			if err := constraint.AddKnowledge(sys, knowledgeFor(tbl, d, 2, s3, 0.5)); err != nil {
				t.Error(err)
				return
			}
			ctx := telemetry.WithLogger(context.Background(), base.With("solve", i))
			sol, err := SolveContext(ctx, sys, Options{Decompose: true})
			if err != nil {
				t.Error(err)
				return
			}
			if !sol.Stats.Converged {
				t.Errorf("solve %d did not converge", i)
			}
		}(i)
	}
	wg.Wait()

	// Group events by the solve tag and check each stream.
	type stream struct {
		start, done, presolve, component int
	}
	streams := make(map[float64]*stream)
	for _, line := range strings.Split(strings.TrimSpace(out.String()), "\n") {
		var ev map[string]any
		if err := json.Unmarshal([]byte(line), &ev); err != nil {
			t.Fatalf("corrupt log line: %v\n%s", err, line)
		}
		id, ok := ev["solve"].(float64)
		if !ok {
			t.Fatalf("event without solve tag: %s", line)
		}
		st := streams[id]
		if st == nil {
			st = &stream{}
			streams[id] = st
		}
		switch ev["msg"] {
		case "solve.start":
			st.start++
		case "solve.done":
			st.done++
		case "presolve":
			st.presolve++
		case "component.done":
			st.component++
		case "solve.failed":
			t.Fatalf("solve %v failed: %s", id, line)
		}
	}
	if len(streams) != solves {
		t.Fatalf("events for %d solves, want %d", len(streams), solves)
	}
	for id, st := range streams {
		if st.start != 1 || st.done != 1 {
			t.Errorf("solve %v: start=%d done=%d, want exactly 1 of each", id, st.start, st.done)
		}
		if st.presolve < 1 || st.component < 1 {
			t.Errorf("solve %v: presolve=%d component.done=%d, want ≥1 of each", id, st.presolve, st.component)
		}
	}
}

// countingObserver tallies the SolveObserver callbacks.
type countingObserver struct {
	mu         sync.Mutex
	events     map[string]int
	iterations atomic.Int64
}

func (o *countingObserver) SolveEvent(name string, attrs ...telemetry.Attr) {
	o.mu.Lock()
	defer o.mu.Unlock()
	if o.events == nil {
		o.events = map[string]int{}
	}
	o.events[name]++
}

func (o *countingObserver) SolveIteration(component, iteration int, objective, gradNorm float64) {
	o.iterations.Add(1)
}

// TestSolveObserverFeed: a context observer receives the full lifecycle
// plus per-iteration trace of a decomposed solve, and installing it does
// not displace a caller-supplied solver trace.
func TestSolveObserverFeed(t *testing.T) {
	tbl, d, _, sys := paperSystem(t)
	s3 := tbl.Schema().SA().MustCode("Pneumonia")
	if err := constraint.AddKnowledge(sys, knowledgeFor(tbl, d, 2, s3, 0.5)); err != nil {
		t.Fatal(err)
	}
	obs := &countingObserver{}
	ctx := telemetry.WithSolveObserver(context.Background(), obs)
	var traced atomic.Int64
	opts := Options{Decompose: true, Solver: solver.Options{
		Trace: func(ev solver.TraceEvent) { traced.Add(1) },
	}}
	sol, err := SolveContext(ctx, sys, opts)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"solve.start", "decompose", "presolve", "component.done", "solve.done"} {
		if obs.events[name] == 0 {
			t.Errorf("observer never saw %s: %v", name, obs.events)
		}
	}
	if obs.events["solve.done"] != 1 {
		t.Errorf("solve.done seen %d times", obs.events["solve.done"])
	}
	if obs.iterations.Load() == 0 {
		t.Error("observer saw no iterations")
	}
	if traced.Load() == 0 {
		t.Error("caller's solver trace was displaced by the observer")
	}
	// The observer chain must see exactly what the caller's trace sees.
	if got, want := obs.iterations.Load(), traced.Load(); got != want {
		t.Errorf("observer iterations = %d, caller trace = %d", got, want)
	}
	if sol.Stats.Iterations == 0 {
		t.Error("stats report zero iterations for a solve with knowledge")
	}
}
