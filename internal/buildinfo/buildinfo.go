// Package buildinfo exposes the binary's build provenance — module
// version, VCS commit and Go toolchain — read once from the metadata the
// Go linker embeds (debug.ReadBuildInfo). Every surface that reports
// provenance (the /healthz body, the pmaxentd_build_info metric, audit
// records) draws from this single snapshot, so they can never disagree.
package buildinfo

import (
	"fmt"
	"runtime/debug"
	"sync"
)

// Info is the build provenance snapshot.
type Info struct {
	// Version is the main module's version ("(devel)" for local builds).
	Version string
	// Commit is the VCS revision, truncated to 12 hex digits; empty when
	// the binary was built outside a checkout.
	Commit string
	// Modified reports uncommitted changes at build time ("dirty" builds).
	Modified bool
	// GoVersion is the toolchain that produced the binary.
	GoVersion string
}

var (
	once   sync.Once
	cached Info
)

// Get returns the build provenance, reading it on first call.
func Get() Info {
	once.Do(func() {
		cached = read(debug.ReadBuildInfo())
	})
	return cached
}

// read extracts the fields from a raw build-info record; factored out of
// Get so tests can exercise it without a linker-stamped binary.
func read(bi *debug.BuildInfo, ok bool) Info {
	info := Info{Version: "(devel)"}
	if !ok || bi == nil {
		return info
	}
	if bi.Main.Version != "" {
		info.Version = bi.Main.Version
	}
	info.GoVersion = bi.GoVersion
	for _, s := range bi.Settings {
		switch s.Key {
		case "vcs.revision":
			if len(s.Value) > 12 {
				info.Commit = s.Value[:12]
			} else {
				info.Commit = s.Value
			}
		case "vcs.modified":
			info.Modified = s.Value == "true"
		}
	}
	return info
}

// String renders the provenance as a single token suitable for logs and
// audit records: "version" or "version+commit" with a "+dirty" suffix
// for modified builds.
func (i Info) String() string {
	s := i.Version
	if i.Commit != "" {
		s = fmt.Sprintf("%s+%s", s, i.Commit)
	}
	if i.Modified {
		s += "+dirty"
	}
	return s
}
