package buildinfo

import (
	"runtime/debug"
	"testing"
)

func TestReadMissing(t *testing.T) {
	got := read(nil, false)
	if got.Version != "(devel)" {
		t.Fatalf("missing build info: version = %q, want (devel)", got.Version)
	}
	if got.String() != "(devel)" {
		t.Fatalf("missing build info: String() = %q, want (devel)", got.String())
	}
}

func TestReadFields(t *testing.T) {
	bi := &debug.BuildInfo{
		GoVersion: "go1.24.0",
		Main:      debug.Module{Version: "v1.2.3"},
		Settings: []debug.BuildSetting{
			{Key: "vcs.revision", Value: "0123456789abcdef0123456789abcdef01234567"},
			{Key: "vcs.modified", Value: "true"},
		},
	}
	got := read(bi, true)
	if got.Version != "v1.2.3" {
		t.Errorf("Version = %q, want v1.2.3", got.Version)
	}
	if got.Commit != "0123456789ab" {
		t.Errorf("Commit = %q, want 12-digit truncation", got.Commit)
	}
	if !got.Modified {
		t.Error("Modified = false, want true")
	}
	if got.GoVersion != "go1.24.0" {
		t.Errorf("GoVersion = %q", got.GoVersion)
	}
	if want := "v1.2.3+0123456789ab+dirty"; got.String() != want {
		t.Errorf("String() = %q, want %q", got.String(), want)
	}
}

func TestGetStable(t *testing.T) {
	if Get() != Get() {
		t.Fatal("Get() not stable across calls")
	}
}
