package linalg

import "fmt"

// Runner executes n independent tasks fn(0), …, fn(n−1), possibly
// concurrently, and returns only after every call has completed. A nil
// Runner means serial execution. The blocked kernels below hand a Runner
// one task per block; a closure over pool.(*Pool).ParallelFor satisfies
// it, which is how the solver threads its shared worker pool down into
// the matrix kernels without linalg depending on the pool package.
type Runner func(n int, fn func(i int))

// blockLen is the fixed block length of every parallel kernel partition.
// The partition is a function of the problem shape ONLY — never of the
// worker count — which is what makes the parallel kernels bit-identical
// to the serial ones: each block's result is computed in the same order
// by whichever goroutine picks it up, and per-block partial sums are
// combined in ascending block order afterwards. 512 entries keeps a
// block's input and output well inside L1 while giving enough blocks to
// balance load on the shapes the solver produces.
const blockLen = 512

// NumBlocks reports how many fixed-length blocks cover n entries.
func NumBlocks(n int) int {
	return (n + blockLen - 1) / blockLen
}

// BlockBounds returns the half-open entry range [lo, hi) of block b over
// n entries. Every block except the last spans exactly blockLen entries.
func BlockBounds(b, n int) (lo, hi int) {
	lo = b * blockLen
	hi = lo + blockLen
	if hi > n {
		hi = n
	}
	return lo, hi
}

// ColView is a read-only column-major (CSC) view of a CSR matrix, backed
// by the same cached transpose MulTVec gathers from. It exists so
// callers fusing per-column work (the solver's Aᵀλ → exp pass) can reach
// single columns without reimplementing the layout. Entries within a
// column appear in ascending row order — the counting-sort build
// preserves row order — so a column dot product visits rows in one fixed
// order that depends only on the matrix, never on which goroutine
// evaluates it.
type ColView struct {
	m *CSR
	t *cscLayout
}

// Columns returns the CSC view, building the cached transpose on first
// use. Like MulTVec, it must not race with AppendRow.
func (m *CSR) Columns() ColView {
	return ColView{m: m, t: m.transpose()}
}

// Cols reports the column count of the underlying matrix.
func (v ColView) Cols() int { return v.m.numCols }

// Dot returns the dot product of column c with x: (Aᵀx)_c.
func (v ColView) Dot(c int, x []float64) float64 {
	lo, hi := v.t.colPtr[c], v.t.colPtr[c+1]
	vals, rows := v.t.vals[lo:hi], v.t.rowIdx[lo:hi:hi]
	var s float64
	for k, val := range vals {
		s += val * x[rows[k]]
	}
	return s
}

// MulVecRange computes y[r] = (A x)_r for rows lo ≤ r < hi, leaving the
// rest of y untouched. Each output row is an independent dot product, so
// disjoint ranges compose into a full MulVec bit-identically regardless
// of which goroutine computes which range. The dot loop is unrolled with
// a single in-order accumulator (see fused.go), so the unrolling changes
// nothing at bit level.
func (m *CSR) MulVecRange(x, y []float64, lo, hi int) {
	for r := lo; r < hi; r++ {
		p, q := m.rowPtr[r], m.rowPtr[r+1]
		vals, cols := m.vals[p:q], m.colIdx[p:q:q]
		var s float64
		k := 0
		for ; k+4 <= len(vals); k += 4 {
			s += vals[k] * x[cols[k]]
			s += vals[k+1] * x[cols[k+1]]
			s += vals[k+2] * x[cols[k+2]]
			s += vals[k+3] * x[cols[k+3]]
		}
		for ; k < len(vals); k++ {
			s += vals[k] * x[cols[k]]
		}
		y[r] = s
	}
}

// MulVecBlocks computes y = A x like MulVec, but splits the rows into
// the fixed block partition and runs one task per block on run. Rows are
// disjoint element-wise outputs, so the result is bit-identical to
// MulVec at any worker count. A nil run falls back to the serial kernel.
func (m *CSR) MulVecBlocks(x, y []float64, run Runner) {
	if len(x) != m.numCols || len(y) != m.Rows() {
		panic(fmt.Sprintf("linalg: MulVecBlocks dims: x %d (want %d), y %d (want %d)", len(x), m.numCols, len(y), m.Rows()))
	}
	rows := m.Rows()
	if run == nil {
		m.MulVecRange(x, y, 0, rows)
		return
	}
	run(NumBlocks(rows), func(b int) {
		lo, hi := BlockBounds(b, rows)
		m.MulVecRange(x, y, lo, hi)
	})
}

// MulTVecBlocks computes y = Aᵀ x over the CSC layout, one task per
// column block. Each y[c] is a single contiguous gather — an independent
// output element — so the result is bit-identical to the serial gather
// kernel at any worker count.
// Unlike MulTVec it always uses the gather layout: the blocked kernel
// exists for solver-scale matrices, which sit far beyond the scatter
// heuristic's break-even anyway.
func (m *CSR) MulTVecBlocks(x, y []float64, run Runner) {
	if len(x) != m.Rows() || len(y) != m.numCols {
		panic(fmt.Sprintf("linalg: MulTVecBlocks dims: x %d (want %d), y %d (want %d)", len(x), m.Rows(), len(y), m.numCols))
	}
	t := m.transpose()
	if run == nil {
		m.mulTVecGather(t, x, y)
		return
	}
	v := ColView{m: m, t: t}
	n := m.numCols
	run(NumBlocks(n), func(b int) {
		lo, hi := BlockBounds(b, n)
		for c := lo; c < hi; c++ {
			y[c] = v.Dot(c, x)
		}
	})
}
