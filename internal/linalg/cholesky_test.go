package linalg

import (
	"math"
	"math/rand"
	"testing"
)

func TestSolveSPDIdentity(t *testing.T) {
	h := [][]float64{{1, 0}, {0, 1}}
	b := []float64{3, -4}
	y, err := SolveSPD(h, b)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(y[0]-3) > 1e-12 || math.Abs(y[1]+4) > 1e-12 {
		t.Fatalf("y = %v", y)
	}
}

func TestSolveSPDKnownSystem(t *testing.T) {
	// H = [[4, 2], [2, 3]], b = [2, 5] → y = [-0.5, 2].
	h := [][]float64{{4, 2}, {2, 3}}
	b := []float64{2, 5}
	y, err := SolveSPD(h, b)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(y[0]+0.5) > 1e-12 || math.Abs(y[1]-2) > 1e-12 {
		t.Fatalf("y = %v, want [-0.5, 2]", y)
	}
}

func TestSolveSPDNotPositiveDefinite(t *testing.T) {
	h := [][]float64{{1, 2}, {2, 1}} // eigenvalues 3, -1
	if _, err := SolveSPD(h, []float64{1, 1}); err == nil {
		t.Fatal("expected non-PD error")
	}
	zero := [][]float64{{0}}
	if _, err := SolveSPD(zero, []float64{1}); err == nil {
		t.Fatal("expected singular error")
	}
}

func TestSolveSPDDimErrors(t *testing.T) {
	if _, err := SolveSPD([][]float64{{1, 0}, {0, 1}}, []float64{1}); err == nil {
		t.Fatal("expected rhs dim error")
	}
	if _, err := SolveSPD([][]float64{{1, 0}}, []float64{1}); err == nil {
		t.Fatal("expected non-square error")
	}
	if y, err := SolveSPD(nil, nil); err != nil || len(y) != 0 {
		t.Fatalf("empty system: %v %v", y, err)
	}
}

// TestSolveSPDRandom builds random SPD matrices H = MᵀM + I and checks
// the residual of the computed solution.
func TestSolveSPDRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 30; trial++ {
		n := 1 + rng.Intn(8)
		m := make([][]float64, n)
		for i := range m {
			m[i] = make([]float64, n)
			for j := range m[i] {
				m[i][j] = rng.NormFloat64()
			}
		}
		h := make([][]float64, n)
		orig := make([][]float64, n)
		for i := range h {
			h[i] = make([]float64, n)
			orig[i] = make([]float64, n)
			for j := range h[i] {
				var s float64
				for k := 0; k < n; k++ {
					s += m[k][i] * m[k][j]
				}
				if i == j {
					s++
				}
				h[i][j] = s
				orig[i][j] = s
			}
		}
		b := make([]float64, n)
		want := make([]float64, n)
		for i := range b {
			want[i] = rng.NormFloat64()
		}
		for i := range b {
			for j := range want {
				b[i] += orig[i][j] * want[j]
			}
		}
		y, err := SolveSPD(h, b)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		for i := range y {
			if math.Abs(y[i]-want[i]) > 1e-8*(1+math.Abs(want[i])) {
				t.Fatalf("trial %d: y[%d] = %g, want %g", trial, i, y[i], want[i])
			}
		}
	}
}
