package linalg

import (
	"fmt"
	"math"
)

// SolveSPD solves the symmetric positive-definite system H y = b in place
// via Cholesky factorization (H = L Lᵀ). H is given as dense rows and is
// overwritten with the factor; b is overwritten with the solution, which
// is also returned. It reports an error when H is not (numerically)
// positive definite, which callers like Newton's method treat as a signal
// to fall back to gradient descent.
func SolveSPD(h [][]float64, b []float64) ([]float64, error) {
	n := len(h)
	if n == 0 {
		return b, nil
	}
	if len(b) != n {
		return nil, fmt.Errorf("linalg: SolveSPD dims: matrix %d, rhs %d", n, len(b))
	}
	for _, row := range h {
		if len(row) != n {
			return nil, fmt.Errorf("linalg: SolveSPD matrix is not square")
		}
	}
	// In-place Cholesky: lower triangle of h becomes L.
	for j := 0; j < n; j++ {
		d := h[j][j]
		for k := 0; k < j; k++ {
			d -= h[j][k] * h[j][k]
		}
		if d <= 0 || math.IsNaN(d) {
			return nil, fmt.Errorf("linalg: matrix not positive definite at pivot %d (%g)", j, d)
		}
		h[j][j] = math.Sqrt(d)
		inv := 1 / h[j][j]
		for i := j + 1; i < n; i++ {
			s := h[i][j]
			for k := 0; k < j; k++ {
				s -= h[i][k] * h[j][k]
			}
			h[i][j] = s * inv
		}
	}
	// Forward substitution: L z = b.
	for i := 0; i < n; i++ {
		s := b[i]
		for k := 0; k < i; k++ {
			s -= h[i][k] * b[k]
		}
		b[i] = s / h[i][i]
	}
	// Back substitution: Lᵀ y = z.
	for i := n - 1; i >= 0; i-- {
		s := b[i]
		for k := i + 1; k < n; k++ {
			s -= h[k][i] * b[k]
		}
		b[i] = s / h[i][i]
	}
	return b, nil
}
