package linalg

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almost(a, b float64) bool { return math.Abs(a-b) <= 1e-12*math.Max(1, math.Abs(a)+math.Abs(b)) }

func TestDot(t *testing.T) {
	if got := Dot([]float64{1, 2, 3}, []float64{4, 5, 6}); !almost(got, 32) {
		t.Fatalf("Dot = %g, want 32", got)
	}
	if got := Dot(nil, nil); got != 0 {
		t.Fatalf("Dot(nil,nil) = %g, want 0", got)
	}
}

func TestDotMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Dot([]float64{1}, []float64{1, 2})
}

func TestAxpyScaleFill(t *testing.T) {
	y := []float64{1, 1, 1}
	Axpy(2, []float64{1, 2, 3}, y)
	want := []float64{3, 5, 7}
	for i := range y {
		if !almost(y[i], want[i]) {
			t.Fatalf("Axpy[%d] = %g, want %g", i, y[i], want[i])
		}
	}
	Scale(0.5, y)
	if !almost(y[2], 3.5) {
		t.Fatalf("Scale: %g, want 3.5", y[2])
	}
	Fill(y, 0)
	if NormInf(y) != 0 {
		t.Fatal("Fill(0) left nonzero entries")
	}
}

func TestNorms(t *testing.T) {
	x := []float64{3, -4}
	if got := Norm2(x); !almost(got, 5) {
		t.Fatalf("Norm2 = %g, want 5", got)
	}
	if got := NormInf(x); !almost(got, 4) {
		t.Fatalf("NormInf = %g, want 4", got)
	}
	if got := Norm2(nil); got != 0 {
		t.Fatalf("Norm2(nil) = %g", got)
	}
	// Overflow guard: components near MaxFloat64 must not produce +Inf.
	big := []float64{math.MaxFloat64 / 2, math.MaxFloat64 / 2}
	if got := Norm2(big); math.IsInf(got, 0) || math.IsNaN(got) {
		t.Fatalf("Norm2 overflowed: %g", got)
	}
}

func TestCSRBasics(t *testing.T) {
	m := NewCSR(4)
	if err := m.AppendRow([]int{0, 2}, []float64{1, 2}); err != nil {
		t.Fatal(err)
	}
	if err := m.AppendRow([]int{1, 3}, []float64{3, 4}); err != nil {
		t.Fatal(err)
	}
	if m.Rows() != 2 || m.Cols() != 4 || m.NNZ() != 4 {
		t.Fatalf("dims = (%d,%d,%d), want (2,4,4)", m.Rows(), m.Cols(), m.NNZ())
	}
	cols, vals := m.Row(1)
	if cols[0] != 1 || vals[1] != 4 {
		t.Fatalf("Row(1) = %v %v", cols, vals)
	}

	x := []float64{1, 1, 1, 1}
	y := make([]float64, 2)
	m.MulVec(x, y)
	if !almost(y[0], 3) || !almost(y[1], 7) {
		t.Fatalf("MulVec = %v, want [3 7]", y)
	}
	yt := make([]float64, 4)
	m.MulTVec([]float64{1, 2}, yt)
	want := []float64{1, 6, 2, 8}
	for i := range want {
		if !almost(yt[i], want[i]) {
			t.Fatalf("MulTVec[%d] = %g, want %g", i, yt[i], want[i])
		}
	}

	d := m.Dense()
	if !almost(d[0][2], 2) || !almost(d[1][3], 4) || !almost(d[0][1], 0) {
		t.Fatalf("Dense = %v", d)
	}
}

func TestCSRAppendRowErrors(t *testing.T) {
	m := NewCSR(2)
	if err := m.AppendRow([]int{0}, []float64{1, 2}); err == nil {
		t.Fatal("expected length-mismatch error")
	}
	if err := m.AppendRow([]int{5}, []float64{1}); err == nil {
		t.Fatal("expected out-of-range error")
	}
}

func TestCSRDuplicateColumnsAccumulateInDense(t *testing.T) {
	m := NewCSR(2)
	if err := m.AppendRow([]int{0, 0}, []float64{1, 2}); err != nil {
		t.Fatal(err)
	}
	if d := m.Dense(); !almost(d[0][0], 3) {
		t.Fatalf("Dense accumulation = %g, want 3", d[0][0])
	}
	y := make([]float64, 1)
	m.MulVec([]float64{2, 0}, y)
	if !almost(y[0], 6) {
		t.Fatalf("MulVec with duplicate cols = %g, want 6", y[0])
	}
}

func TestRankSimple(t *testing.T) {
	rows := [][]float64{
		{1, 0, 0},
		{0, 1, 0},
		{1, 1, 0},
	}
	if got := Rank(rows, 0); got != 2 {
		t.Fatalf("Rank = %d, want 2", got)
	}
	if got := Rank(nil, 0); got != 0 {
		t.Fatalf("Rank(nil) = %d, want 0", got)
	}
	id := [][]float64{{1, 0}, {0, 1}}
	if got := Rank(id, 0); got != 2 {
		t.Fatalf("Rank(I) = %d, want 2", got)
	}
}

func TestRankDoesNotModifyInput(t *testing.T) {
	rows := [][]float64{{1, 2}, {3, 4}}
	Rank(rows, 0)
	if rows[1][0] != 3 {
		t.Fatal("Rank modified its input")
	}
}

func TestInRowSpace(t *testing.T) {
	rows := [][]float64{
		{1, 1, 0},
		{0, 1, 1},
	}
	if !InRowSpace(rows, []float64{1, 2, 1}, 0) { // row0 + row1
		t.Fatal("expected member of row space")
	}
	if InRowSpace(rows, []float64{1, 0, 1}, 0) {
		t.Fatal("expected non-member")
	}
	if !InRowSpace(rows, []float64{0, 0, 0}, 0) {
		t.Fatal("zero vector must be in every row space")
	}
}

// Property: MulTVec agrees with the dense transpose product.
func TestMulTVecMatchesDense(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		nRows, nCols := 1+r.Intn(6), 1+r.Intn(6)
		m := NewCSR(nCols)
		for i := 0; i < nRows; i++ {
			var cols []int
			var vals []float64
			for c := 0; c < nCols; c++ {
				if r.Intn(2) == 0 {
					cols = append(cols, c)
					vals = append(vals, r.NormFloat64())
				}
			}
			if err := m.AppendRow(cols, vals); err != nil {
				return false
			}
		}
		x := make([]float64, nRows)
		for i := range x {
			x[i] = r.NormFloat64()
		}
		got := make([]float64, nCols)
		m.MulTVec(x, got)
		dense := m.Dense()
		for c := 0; c < nCols; c++ {
			var want float64
			for rI := 0; rI < nRows; rI++ {
				want += dense[rI][c] * x[rI]
			}
			if math.Abs(got[c]-want) > 1e-9 {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 50, Rand: rng}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

// Property: rank of [A; A] equals rank of A (duplicating rows never adds
// rank), and rank is at most min(rows, cols).
func TestRankProperties(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		nRows, nCols := 1+r.Intn(5), 1+r.Intn(5)
		rows := make([][]float64, nRows)
		for i := range rows {
			rows[i] = make([]float64, nCols)
			for c := range rows[i] {
				rows[i][c] = float64(r.Intn(3) - 1)
			}
		}
		rk := Rank(rows, 0)
		if rk > nRows || rk > nCols {
			return false
		}
		doubled := append(append([][]float64(nil), rows...), rows...)
		return Rank(doubled, 0) == rk
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
