package linalg

import "math"

// RankEps is the default pivot threshold for rank computations. The
// constraint matrices we analyze have entries in {0, 1} (and small
// rationals after knowledge expansion), so anything below this after
// partial-pivot elimination is numerical noise.
const RankEps = 1e-9

// Rank returns the numerical rank of the dense matrix (rows of equal
// length) via Gaussian elimination with partial pivoting. The input is not
// modified.
func Rank(rows [][]float64, eps float64) int {
	if len(rows) == 0 {
		return 0
	}
	if eps <= 0 {
		eps = RankEps
	}
	m := make([][]float64, len(rows))
	for i, r := range rows {
		m[i] = CopyOf(r)
	}
	nCols := len(m[0])
	rank := 0
	for col := 0; col < nCols && rank < len(m); col++ {
		// Partial pivot: largest |entry| in this column at or below rank.
		pivot, pivotAbs := -1, eps
		for r := rank; r < len(m); r++ {
			if a := math.Abs(m[r][col]); a > pivotAbs {
				pivot, pivotAbs = r, a
			}
		}
		if pivot < 0 {
			continue
		}
		m[rank], m[pivot] = m[pivot], m[rank]
		pv := m[rank][col]
		for r := rank + 1; r < len(m); r++ {
			f := m[r][col] / pv
			if f == 0 {
				continue
			}
			for c := col; c < nCols; c++ {
				m[r][c] -= f * m[rank][c]
			}
		}
		rank++
	}
	return rank
}

// InRowSpace reports whether v lies in the row space of the matrix, i.e.
// whether v is a linear combination of the rows. This is the paper's
// completeness criterion (Theorem 2): an expression F is an invariant iff
// its coefficient vector is in the span of the base invariants.
func InRowSpace(rows [][]float64, v []float64, eps float64) bool {
	base := Rank(rows, eps)
	aug := append(append([][]float64(nil), rows...), v)
	return Rank(aug, eps) == base
}
