package linalg

import (
	"fmt"
	"sync"
	"sync/atomic"
)

// CSR is a compressed sparse row matrix. Rows are appended once, in order,
// via AppendRow; the matrix is then immutable. This matches how the MaxEnt
// constraint system is assembled: each invariant or knowledge constraint
// becomes one sparse row of A.
//
// Duplicate column indices within a row are permitted and contribute
// additively: MulVec, MulTVec and Dense all treat a row with column c
// appearing twice exactly like a single entry whose value is the sum of
// the duplicates. AppendRow neither sorts nor merges, so NNZ counts the
// stored (unmerged) entries.
type CSR struct {
	numCols int
	rowPtr  []int
	colIdx  []int
	vals    []float64

	// t caches the CSC transpose layout MulTVec gathers from; it is built
	// lazily on first use (see transpose) and invalidated by AppendRow.
	t       atomic.Pointer[cscLayout]
	buildMu sync.Mutex
}

// cscLayout is the compressed sparse column view of a CSR matrix: entry k
// of column c lives at rows[colPtr[c]+k] with value vals[colPtr[c]+k].
// Duplicate row entries within a column are kept as-is (they sum).
type cscLayout struct {
	colPtr []int
	rowIdx []int
	vals   []float64
}

// MulTVec layout selection: both transpose layouts were benchmarked
// across the shapes the solver produces (BenchmarkMulTVec and the
// degree-sweep notes there). The gather over a cached CSC copy wins once
// columns average cscMinDegree or more stored entries — below that the
// per-column loop overhead exceeds the scatter's clear-pass cost, and
// MaxEnt invariant blocks (degree ≈ 2–3) stay on the scatter layout.
// cscMinNNZ additionally keeps tiny matrices on the scatter path, where
// the O(nnz) transpose build could never amortize.
const (
	cscMinNNZ    = 128
	cscMinDegree = 4
)

// NewCSR creates an empty matrix with a fixed column count.
func NewCSR(numCols int) *CSR {
	return &CSR{numCols: numCols, rowPtr: []int{0}}
}

// Rows reports the number of rows appended so far.
func (m *CSR) Rows() int { return len(m.rowPtr) - 1 }

// Cols reports the column count.
func (m *CSR) Cols() int { return m.numCols }

// NNZ reports the number of stored entries.
func (m *CSR) NNZ() int { return len(m.vals) }

// AppendRow appends a sparse row given parallel column-index and value
// slices. Indices must be in range; they need not be sorted and may
// repeat (duplicates sum in every product). The slices are copied.
func (m *CSR) AppendRow(cols []int, vals []float64) error {
	if len(cols) != len(vals) {
		return fmt.Errorf("linalg: row has %d columns but %d values", len(cols), len(vals))
	}
	for _, c := range cols {
		if c < 0 || c >= m.numCols {
			return fmt.Errorf("linalg: column %d out of range [0,%d)", c, m.numCols)
		}
	}
	m.colIdx = append(m.colIdx, cols...)
	m.vals = append(m.vals, vals...)
	m.rowPtr = append(m.rowPtr, len(m.vals))
	m.t.Store(nil) // invalidate the cached transpose
	return nil
}

// Row returns the column indices and values of row r. The slices alias the
// matrix storage and must not be modified.
func (m *CSR) Row(r int) (cols []int, vals []float64) {
	lo, hi := m.rowPtr[r], m.rowPtr[r+1]
	return m.colIdx[lo:hi], m.vals[lo:hi]
}

// MulVec computes y = A x. The output slice must have length Rows().
func (m *CSR) MulVec(x, y []float64) {
	if len(x) != m.numCols || len(y) != m.Rows() {
		panic(fmt.Sprintf("linalg: MulVec dims: x %d (want %d), y %d (want %d)", len(x), m.numCols, len(y), m.Rows()))
	}
	rows := m.Rows()
	for r := 0; r < rows; r++ {
		lo, hi := m.rowPtr[r], m.rowPtr[r+1]
		vals, cols := m.vals[lo:hi], m.colIdx[lo:hi:hi]
		var s float64
		for k, v := range vals {
			s += v * x[cols[k]]
		}
		y[r] = s
	}
}

// MulTVec computes y = Aᵀ x. The output slice must have length Cols() and
// is overwritten. Column-dense matrices use the cached CSC transpose so
// each y[c] is a contiguous gather; small or column-sparse ones keep the
// scatter loop (see the layout constants above). The layouts agree up to
// floating-point summation order — see the property tests.
func (m *CSR) MulTVec(x, y []float64) {
	if len(x) != m.Rows() || len(y) != m.numCols {
		panic(fmt.Sprintf("linalg: MulTVec dims: x %d (want %d), y %d (want %d)", len(x), m.Rows(), len(y), m.numCols))
	}
	if len(m.vals) < cscMinNNZ || len(m.vals) < cscMinDegree*m.numCols {
		m.mulTVecScatter(x, y)
		return
	}
	m.mulTVecGather(m.transpose(), x, y)
}

// mulTVecScatter is the row-major reference layout for y = Aᵀ x: clear y,
// then scatter every row's contribution.
func (m *CSR) mulTVecScatter(x, y []float64) {
	Fill(y, 0)
	rows := m.Rows()
	for r := 0; r < rows; r++ {
		xr := x[r]
		if xr == 0 {
			continue
		}
		lo, hi := m.rowPtr[r], m.rowPtr[r+1]
		vals, cols := m.vals[lo:hi], m.colIdx[lo:hi:hi]
		for k, v := range vals {
			y[cols[k]] += v * xr
		}
	}
}

// mulTVecGather computes y = Aᵀ x from the CSC layout: each output
// component is one contiguous dot product, with no clearing pass and no
// scattered writes.
func (m *CSR) mulTVecGather(t *cscLayout, x, y []float64) {
	for c := 0; c < m.numCols; c++ {
		lo, hi := t.colPtr[c], t.colPtr[c+1]
		vals, rows := t.vals[lo:hi], t.rowIdx[lo:hi:hi]
		var s float64
		for k, v := range vals {
			s += v * x[rows[k]]
		}
		y[c] = s
	}
}

// transpose returns the CSC view of the matrix, building and caching it
// on first use (counting sort over the stored entries, O(NNZ + Cols)).
// The cache is safe for concurrent MulTVec callers; AppendRow invalidates
// it, so assembly must finish before products start (which the
// append-then-solve usage guarantees).
func (m *CSR) transpose() *cscLayout {
	if t := m.t.Load(); t != nil {
		return t
	}
	m.buildMu.Lock()
	defer m.buildMu.Unlock()
	if t := m.t.Load(); t != nil {
		return t
	}
	t := &cscLayout{
		colPtr: make([]int, m.numCols+1),
		rowIdx: make([]int, len(m.vals)),
		vals:   make([]float64, len(m.vals)),
	}
	for _, c := range m.colIdx {
		t.colPtr[c+1]++
	}
	for c := 0; c < m.numCols; c++ {
		t.colPtr[c+1] += t.colPtr[c]
	}
	next := make([]int, m.numCols)
	copy(next, t.colPtr[:m.numCols])
	for r := 0; r < m.Rows(); r++ {
		lo, hi := m.rowPtr[r], m.rowPtr[r+1]
		for k := lo; k < hi; k++ {
			c := m.colIdx[k]
			t.rowIdx[next[c]] = r
			t.vals[next[c]] = m.vals[k]
			next[c]++
		}
	}
	m.t.Store(t)
	return t
}

// Dense expands the matrix to dense row-major form; intended for the small
// per-bucket matrices in rank analyses and tests, not for solver paths.
// Duplicate column indices within a row accumulate, matching MulVec and
// MulTVec.
func (m *CSR) Dense() [][]float64 {
	out := make([][]float64, m.Rows())
	for r := range out {
		row := make([]float64, m.numCols)
		lo, hi := m.rowPtr[r], m.rowPtr[r+1]
		for k := lo; k < hi; k++ {
			row[m.colIdx[k]] += m.vals[k]
		}
		out[r] = row
	}
	return out
}
