package linalg

import "fmt"

// CSR is a compressed sparse row matrix. Rows are appended once, in order,
// via AppendRow; the matrix is then immutable. This matches how the MaxEnt
// constraint system is assembled: each invariant or knowledge constraint
// becomes one sparse row of A.
type CSR struct {
	numCols int
	rowPtr  []int
	colIdx  []int
	vals    []float64
}

// NewCSR creates an empty matrix with a fixed column count.
func NewCSR(numCols int) *CSR {
	return &CSR{numCols: numCols, rowPtr: []int{0}}
}

// Rows reports the number of rows appended so far.
func (m *CSR) Rows() int { return len(m.rowPtr) - 1 }

// Cols reports the column count.
func (m *CSR) Cols() int { return m.numCols }

// NNZ reports the number of stored entries.
func (m *CSR) NNZ() int { return len(m.vals) }

// AppendRow appends a sparse row given parallel column-index and value
// slices. Indices must be in range; they need not be sorted.
func (m *CSR) AppendRow(cols []int, vals []float64) error {
	if len(cols) != len(vals) {
		return fmt.Errorf("linalg: row has %d columns but %d values", len(cols), len(vals))
	}
	for _, c := range cols {
		if c < 0 || c >= m.numCols {
			return fmt.Errorf("linalg: column %d out of range [0,%d)", c, m.numCols)
		}
	}
	m.colIdx = append(m.colIdx, cols...)
	m.vals = append(m.vals, vals...)
	m.rowPtr = append(m.rowPtr, len(m.vals))
	return nil
}

// Row returns the column indices and values of row r. The slices alias the
// matrix storage and must not be modified.
func (m *CSR) Row(r int) (cols []int, vals []float64) {
	lo, hi := m.rowPtr[r], m.rowPtr[r+1]
	return m.colIdx[lo:hi], m.vals[lo:hi]
}

// MulVec computes y = A x. The output slice must have length Rows().
func (m *CSR) MulVec(x, y []float64) {
	if len(x) != m.numCols || len(y) != m.Rows() {
		panic(fmt.Sprintf("linalg: MulVec dims: x %d (want %d), y %d (want %d)", len(x), m.numCols, len(y), m.Rows()))
	}
	for r := 0; r < m.Rows(); r++ {
		lo, hi := m.rowPtr[r], m.rowPtr[r+1]
		var s float64
		for k := lo; k < hi; k++ {
			s += m.vals[k] * x[m.colIdx[k]]
		}
		y[r] = s
	}
}

// MulTVec computes y = Aᵀ x. The output slice must have length Cols() and
// is overwritten.
func (m *CSR) MulTVec(x, y []float64) {
	if len(x) != m.Rows() || len(y) != m.numCols {
		panic(fmt.Sprintf("linalg: MulTVec dims: x %d (want %d), y %d (want %d)", len(x), m.Rows(), len(y), m.numCols))
	}
	Fill(y, 0)
	for r := 0; r < m.Rows(); r++ {
		xr := x[r]
		if xr == 0 {
			continue
		}
		lo, hi := m.rowPtr[r], m.rowPtr[r+1]
		for k := lo; k < hi; k++ {
			y[m.colIdx[k]] += m.vals[k] * xr
		}
	}
}

// Dense expands the matrix to dense row-major form; intended for the small
// per-bucket matrices in rank analyses and tests, not for solver paths.
func (m *CSR) Dense() [][]float64 {
	out := make([][]float64, m.Rows())
	for r := range out {
		row := make([]float64, m.numCols)
		lo, hi := m.rowPtr[r], m.rowPtr[r+1]
		for k := lo; k < hi; k++ {
			row[m.colIdx[k]] += m.vals[k]
		}
		out[r] = row
	}
	return out
}
