package linalg

import (
	"math"
	"math/rand"
	"sync"
	"testing"
)

// randomCSR builds a random sparse matrix. Rows may be empty, column
// indices may repeat within a row (duplicates sum by contract), and a
// share of the value entries are exactly zero.
func randomCSR(rng *rand.Rand, rows, cols int) *CSR {
	m := NewCSR(cols)
	for r := 0; r < rows; r++ {
		nnz := rng.Intn(cols + 1)
		if rng.Intn(5) == 0 {
			nnz = 0 // force empty rows regularly
		}
		cs := make([]int, nnz)
		vs := make([]float64, nnz)
		for k := range cs {
			cs[k] = rng.Intn(cols) // repeats allowed
			switch rng.Intn(4) {
			case 0:
				vs[k] = 0
			default:
				vs[k] = rng.NormFloat64()
			}
		}
		if err := m.AppendRow(cs, vs); err != nil {
			panic(err)
		}
	}
	return m
}

// TestMulTVecGatherMatchesScatter is the CSC-path property test: on
// randomized matrices (empty rows, duplicate columns, zero values, zero
// vectors included) the cached-transpose gather must match the scatter
// reference within summation-order tolerance, regardless of the
// cscMinNNZ shape cutoff the public MulTVec applies.
func TestMulTVecGatherMatchesScatter(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 200; trial++ {
		rows := rng.Intn(30)
		cols := 1 + rng.Intn(30)
		m := randomCSR(rng, rows, cols)

		x := make([]float64, rows)
		if trial%7 != 0 { // every 7th trial keeps the zero vector
			for i := range x {
				x[i] = rng.NormFloat64()
			}
		}
		want := make([]float64, cols)
		m.mulTVecScatter(x, want)
		got := make([]float64, cols)
		m.mulTVecGather(m.transpose(), x, got)
		for c := range want {
			if math.Abs(got[c]-want[c]) > 1e-12*(1+math.Abs(want[c])) {
				t.Fatalf("trial %d: column %d: gather %g, scatter %g", trial, c, got[c], want[c])
			}
		}
		// The public entry point (whichever layout it picks) agrees too.
		pub := make([]float64, cols)
		m.MulTVec(x, pub)
		for c := range want {
			if math.Abs(pub[c]-want[c]) > 1e-12*(1+math.Abs(want[c])) {
				t.Fatalf("trial %d: column %d: MulTVec %g, scatter %g", trial, c, pub[c], want[c])
			}
		}
	}
}

// TestDuplicateColumnSemantics pins the documented contract: a row with a
// duplicated column index behaves, in MulVec, MulTVec (both layouts) and
// Dense, exactly like a row holding the summed coefficient once.
func TestDuplicateColumnSemantics(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 100; trial++ {
		rows := 1 + rng.Intn(10)
		cols := 1 + rng.Intn(10)
		dup := randomCSR(rng, rows, cols)

		// Merge duplicates per row into a canonical matrix.
		merged := NewCSR(cols)
		for r := 0; r < rows; r++ {
			sum := make(map[int]float64)
			cs, vs := dup.Row(r)
			for k, c := range cs {
				sum[c] += vs[k]
			}
			var mc []int
			var mv []float64
			for c := 0; c < cols; c++ {
				if v, ok := sum[c]; ok {
					mc = append(mc, c)
					mv = append(mv, v)
				}
			}
			if err := merged.AppendRow(mc, mv); err != nil {
				t.Fatal(err)
			}
		}

		xc := make([]float64, cols)
		xr := make([]float64, rows)
		for i := range xc {
			xc[i] = rng.NormFloat64()
		}
		for i := range xr {
			xr[i] = rng.NormFloat64()
		}

		yd, ym := make([]float64, rows), make([]float64, rows)
		dup.MulVec(xc, yd)
		merged.MulVec(xc, ym)
		for i := range yd {
			if math.Abs(yd[i]-ym[i]) > 1e-12*(1+math.Abs(ym[i])) {
				t.Fatalf("MulVec duplicate mismatch row %d: %g vs %g", i, yd[i], ym[i])
			}
		}

		td, tm := make([]float64, cols), make([]float64, cols)
		dup.mulTVecScatter(xr, td)
		merged.mulTVecScatter(xr, tm)
		for c := range td {
			if math.Abs(td[c]-tm[c]) > 1e-12*(1+math.Abs(tm[c])) {
				t.Fatalf("MulTVec scatter duplicate mismatch col %d: %g vs %g", c, td[c], tm[c])
			}
		}
		dup.mulTVecGather(dup.transpose(), xr, td)
		for c := range td {
			if math.Abs(td[c]-tm[c]) > 1e-12*(1+math.Abs(tm[c])) {
				t.Fatalf("MulTVec gather duplicate mismatch col %d: %g vs %g", c, td[c], tm[c])
			}
		}

		dd, dm := dup.Dense(), merged.Dense()
		for r := range dd {
			for c := range dd[r] {
				if math.Abs(dd[r][c]-dm[r][c]) > 1e-12*(1+math.Abs(dm[r][c])) {
					t.Fatalf("Dense duplicate mismatch (%d,%d): %g vs %g", r, c, dd[r][c], dm[r][c])
				}
			}
		}
	}
}

// TestTransposeInvalidatedByAppendRow ensures the cached CSC layout never
// serves stale data after further assembly.
func TestTransposeInvalidatedByAppendRow(t *testing.T) {
	m := NewCSR(3)
	if err := m.AppendRow([]int{0, 2}, []float64{1, 2}); err != nil {
		t.Fatal(err)
	}
	y := make([]float64, 3)
	m.mulTVecGather(m.transpose(), []float64{1}, y)
	if y[0] != 1 || y[2] != 2 {
		t.Fatalf("pre-append gather wrong: %v", y)
	}
	if err := m.AppendRow([]int{1}, []float64{5}); err != nil {
		t.Fatal(err)
	}
	m.mulTVecGather(m.transpose(), []float64{1, 1}, y)
	if y[0] != 1 || y[1] != 5 || y[2] != 2 {
		t.Fatalf("post-append gather stale: %v", y)
	}
}

// TestTransposeConcurrentBuild hammers the lazy build from many
// goroutines; run with -race this checks the double-checked locking.
func TestTransposeConcurrentBuild(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	m := randomCSR(rng, 200, 50)
	x := make([]float64, 200)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	want := make([]float64, 50)
	m.mulTVecScatter(x, want)

	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			y := make([]float64, 50)
			for i := 0; i < 50; i++ {
				m.MulTVec(x, y)
			}
			for c := range want {
				if math.Abs(y[c]-want[c]) > 1e-12*(1+math.Abs(want[c])) {
					t.Errorf("concurrent MulTVec col %d: %g want %g", c, y[c], want[c])
					return
				}
			}
		}()
	}
	wg.Wait()
}

// benchmarkMatrix mimics a reduced MaxEnt constraint block: short rows
// (bucket invariants touch L≈5 terms) over a wide variable space.
func benchmarkMatrix(rows, cols, rowNNZ int) (*CSR, []float64, []float64) {
	rng := rand.New(rand.NewSource(1))
	m := NewCSR(cols)
	cs := make([]int, rowNNZ)
	vs := make([]float64, rowNNZ)
	for r := 0; r < rows; r++ {
		for k := range cs {
			cs[k] = rng.Intn(cols)
			vs[k] = 1
		}
		if err := m.AppendRow(cs, vs); err != nil {
			panic(err)
		}
	}
	x := make([]float64, rows)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	return m, x, make([]float64, cols)
}

// BenchmarkMulTVec measures both transpose layouts across the shapes the
// solver produces; the cscMinNNZ cutoff in MulTVec is chosen from these
// numbers (scatter for tiny blocks, gather above).
func BenchmarkMulTVec(b *testing.B) {
	shapes := []struct {
		name             string
		rows, cols, rnnz int
	}{
		{"component_16x40", 16, 40, 5},
		{"figure_500x2000", 500, 2000, 5},
		{"dense_300x300", 300, 300, 60},
	}
	for _, sh := range shapes {
		m, x, y := benchmarkMatrix(sh.rows, sh.cols, sh.rnnz)
		b.Run(sh.name+"/scatter", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				m.mulTVecScatter(x, y)
			}
		})
		b.Run(sh.name+"/gather", func(b *testing.B) {
			t := m.transpose()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				m.mulTVecGather(t, x, y)
			}
		})
	}
}
