package linalg

import (
	"context"
	"math/rand"
	"sync/atomic"
	"testing"

	"privacymaxent/internal/pool"
)

// poolRunner adapts a shared worker pool into the kernel Runner shape,
// exactly as the solver does.
func poolRunner(p *pool.Pool, max int) Runner {
	return func(n int, fn func(i int)) {
		p.ParallelFor(context.Background(), n, max, fn)
	}
}

// TestBlockPartition: the partition covers [0, n) exactly, in order,
// with every block but the last of full length.
func TestBlockPartition(t *testing.T) {
	for _, n := range []int{0, 1, blockLen - 1, blockLen, blockLen + 1, 3*blockLen + 17} {
		nb := NumBlocks(n)
		next := 0
		for b := 0; b < nb; b++ {
			lo, hi := BlockBounds(b, n)
			if lo != next {
				t.Fatalf("n=%d block %d starts at %d, want %d", n, b, lo, next)
			}
			if b < nb-1 && hi-lo != blockLen {
				t.Fatalf("n=%d block %d has length %d, want %d", n, b, hi-lo, blockLen)
			}
			next = hi
		}
		if next != n {
			t.Fatalf("n=%d partition covers [0,%d)", n, next)
		}
	}
}

// TestBlockedKernelsBitIdentical: at every worker count — nil runner,
// serial pool, and genuinely parallel pools — MulVecBlocks and
// MulTVecBlocks produce bit-for-bit the outputs of their serial
// reference kernels, on matrices spanning the blockLen boundary.
func TestBlockedKernelsBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	shapes := [][2]int{{1, 1}, {17, 30}, {blockLen + 3, 2*blockLen + 5}, {2*blockLen + 5, blockLen - 1}, {900, 1300}}
	for _, sh := range shapes {
		rows, cols := sh[0], sh[1]
		m := randomCSR(rng, rows, cols)
		x := make([]float64, cols)
		for i := range x {
			x[i] = rng.NormFloat64()
		}
		xt := make([]float64, rows)
		for i := range xt {
			xt[i] = rng.NormFloat64()
		}
		wantY := make([]float64, rows)
		m.MulVec(x, wantY)
		wantYT := make([]float64, cols)
		m.mulTVecGather(m.transpose(), xt, wantYT)

		check := func(name string, run Runner) {
			t.Helper()
			y := make([]float64, rows)
			m.MulVecBlocks(x, y, run)
			for r := range wantY {
				if y[r] != wantY[r] {
					t.Fatalf("%dx%d %s: MulVecBlocks row %d = %x, serial %x", rows, cols, name, r, y[r], wantY[r])
				}
			}
			yt := make([]float64, cols)
			m.MulTVecBlocks(xt, yt, run)
			for c := range wantYT {
				if yt[c] != wantYT[c] {
					t.Fatalf("%dx%d %s: MulTVecBlocks col %d = %x, gather %x", rows, cols, name, c, yt[c], wantYT[c])
				}
			}
		}
		check("nil", nil)
		for _, workers := range []int{1, 2, 3, 8} {
			p := pool.New(workers)
			check("pool", poolRunner(p, 0))
			p.Close()
		}
	}
}

// TestColViewDotMatchesMulTVec: per-column Dot composes into exactly the
// gather kernel's output.
func TestColViewDotMatchesMulTVec(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	m := randomCSR(rng, 40, 25)
	x := make([]float64, 40)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	want := make([]float64, 25)
	m.mulTVecGather(m.transpose(), x, want)
	v := m.Columns()
	if v.Cols() != 25 {
		t.Fatalf("ColView.Cols = %d, want 25", v.Cols())
	}
	for c := 0; c < v.Cols(); c++ {
		if got := v.Dot(c, x); got != want[c] {
			t.Fatalf("column %d: Dot %x, gather %x", c, got, want[c])
		}
	}
}

// TestMulVecRangeDisjoint: ranges only write their own rows.
func TestMulVecRangeDisjoint(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	m := randomCSR(rng, 20, 10)
	x := make([]float64, 10)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	y := make([]float64, 20)
	for i := range y {
		y[i] = -1
	}
	m.MulVecRange(x, y, 5, 12)
	want := make([]float64, 20)
	m.MulVec(x, want)
	for r := 0; r < 20; r++ {
		if r >= 5 && r < 12 {
			if y[r] != want[r] {
				t.Fatalf("row %d inside range: %g, want %g", r, y[r], want[r])
			}
		} else if y[r] != -1 {
			t.Fatalf("row %d outside range was written: %g", r, y[r])
		}
	}
}

// TestBlockedKernelsActuallyParallel: on a matrix with many blocks a
// parallel pool really distributes blocks across goroutines (guards
// against a silent fallback to serial).
func TestBlockedKernelsActuallyParallel(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	m := randomCSR(rng, 4*blockLen, 8)
	x := make([]float64, 8)
	y := make([]float64, 4*blockLen)
	p := pool.New(4)
	defer p.Close()
	var calls int32
	run := Runner(func(n int, fn func(int)) {
		atomic.AddInt32(&calls, int32(n))
		p.ParallelFor(context.Background(), n, 0, fn)
	})
	m.MulVecBlocks(x, y, run)
	if calls != 4 {
		t.Fatalf("expected 4 block tasks, runner saw %d", calls)
	}
}
