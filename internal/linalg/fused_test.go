package linalg

import (
	"math"
	"math/rand"
	"testing"
)

// The matrices come from sparse_test.go's randomCSR: empty rows,
// duplicate columns and zero values included, with row lengths covering
// every unroll remainder (0–3 tail entries).

// TestExpDotsBitIdentical: the unrolled fused kernel must reproduce the
// naive per-column Dot → exp loop bit for bit — it is unconditionally on
// in the solver's exact path.
func TestExpDotsBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 30; trial++ {
		rows, cols := 1+rng.Intn(40), 1+rng.Intn(60)
		m := randomCSR(rng, rows, cols)
		v := m.Columns()
		x := make([]float64, rows)
		for i := range x {
			x[i] = rng.NormFloat64()
		}
		want := make([]float64, cols)
		var wantSum float64
		for c := 0; c < cols; c++ {
			e := math.Exp(v.Dot(c, x) - 1)
			want[c] = e
			wantSum += e
		}
		got := make([]float64, cols)
		gotSum := v.ExpDots(x, got, 0, cols)
		if gotSum != wantSum {
			t.Fatalf("trial %d: ExpDots sum %v, naive %v", trial, gotSum, wantSum)
		}
		for c := range want {
			if got[c] != want[c] {
				t.Fatalf("trial %d col %d: ExpDots %v, naive %v", trial, c, got[c], want[c])
			}
		}
		// Split ranges must compose to the same values bit-identically.
		mid := cols / 2
		split := make([]float64, cols)
		s := v.ExpDots(x, split, 0, mid) + v.ExpDots(x, split, mid, cols)
		for c := range want {
			if split[c] != want[c] {
				t.Fatalf("trial %d col %d: split ExpDots %v, naive %v", trial, c, split[c], want[c])
			}
		}
		_ = s
	}
}

// TestExpDotsFastTolerance: the multi-accumulator flavour may reassociate
// the sum but must stay within a few ulps of the exact kernel.
func TestExpDotsFastTolerance(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 30; trial++ {
		rows, cols := 1+rng.Intn(40), 1+rng.Intn(60)
		m := randomCSR(rng, rows, cols)
		v := m.Columns()
		x := make([]float64, rows)
		for i := range x {
			x[i] = rng.NormFloat64()
		}
		exact := make([]float64, cols)
		v.ExpDots(x, exact, 0, cols)
		fast := make([]float64, cols)
		v.ExpDotsFast(x, fast, 0, cols)
		for c := range exact {
			diff := math.Abs(fast[c] - exact[c])
			if diff > 1e-12*(1+math.Abs(exact[c])) {
				t.Fatalf("trial %d col %d: fast %v vs exact %v", trial, c, fast[c], exact[c])
			}
		}
	}
}

// TestMulVecRangeFastTolerance: same contract for the fast row kernel.
func TestMulVecRangeFastTolerance(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 30; trial++ {
		rows, cols := 1+rng.Intn(40), 1+rng.Intn(60)
		m := randomCSR(rng, rows, cols)
		x := make([]float64, cols)
		for i := range x {
			x[i] = rng.NormFloat64()
		}
		exact := make([]float64, rows)
		m.MulVecRange(x, exact, 0, rows)
		fast := make([]float64, rows)
		m.MulVecRangeFast(x, fast, 0, rows)
		for r := range exact {
			diff := math.Abs(fast[r] - exact[r])
			if diff > 1e-12*(1+math.Abs(exact[r])) {
				t.Fatalf("trial %d row %d: fast %v vs exact %v", trial, r, fast[r], exact[r])
			}
		}
	}
}
