package linalg

import "math"

// This file holds the unrolled variants of the solver's two hot kernels:
// the fused Aᵀλ → exp column pass and the A·x row pass. Each kernel comes
// in an exact flavour and a -fast-math flavour.
//
// The exact flavour unrolls the dot-product loop four entries per trip
// but keeps a single accumulator updated in ascending entry order, so the
// floating-point additions happen in exactly the order of the naive loop
// — the result is bit-identical, the win comes purely from amortized loop
// overhead and from hoisting the entry slices once per column/row (the
// three-index re-slice pins the value and index slices to equal length,
// which lets the compiler drop the per-entry bounds checks).
//
// The fast flavour accumulates into four independent partial sums folded
// pairwise at the end. That reassociation breaks bit-parity with the
// serial order — results differ at rounding level — so it is reachable
// only through maxent.Options.FastMath, and its output is gated by the
// accsnap tolerance cross-check instead of the bit-parity property tests.

// ExpDots computes dst[c] = exp((Aᵀx)_c − 1) for every column c in
// [lo, hi) and returns the sum of those entries in ascending column
// order — one block of the solver's fused Aᵀλ → exp → partition pass.
// Bit-identical to the naive per-entry loop (single in-order
// accumulator).
func (v ColView) ExpDots(x, dst []float64, lo, hi int) float64 {
	colPtr := v.t.colPtr
	var sum float64
	for c := lo; c < hi; c++ {
		p, q := colPtr[c], colPtr[c+1]
		vals := v.t.vals[p:q]
		rows := v.t.rowIdx[p:q:q]
		var s float64
		k := 0
		for ; k+4 <= len(vals); k += 4 {
			s += vals[k] * x[rows[k]]
			s += vals[k+1] * x[rows[k+1]]
			s += vals[k+2] * x[rows[k+2]]
			s += vals[k+3] * x[rows[k+3]]
		}
		for ; k < len(vals); k++ {
			s += vals[k] * x[rows[k]]
		}
		e := math.Exp(s - 1)
		dst[c] = e
		sum += e
	}
	return sum
}

// ExpDotsFast is ExpDots with four independent dot-product accumulators
// folded pairwise — faster on long columns, not bit-identical to the
// in-order sum. Opt-in via maxent.Options.FastMath.
func (v ColView) ExpDotsFast(x, dst []float64, lo, hi int) float64 {
	colPtr := v.t.colPtr
	var sum float64
	for c := lo; c < hi; c++ {
		p, q := colPtr[c], colPtr[c+1]
		vals := v.t.vals[p:q]
		rows := v.t.rowIdx[p:q:q]
		var s0, s1, s2, s3 float64
		k := 0
		for ; k+4 <= len(vals); k += 4 {
			s0 += vals[k] * x[rows[k]]
			s1 += vals[k+1] * x[rows[k+1]]
			s2 += vals[k+2] * x[rows[k+2]]
			s3 += vals[k+3] * x[rows[k+3]]
		}
		for ; k < len(vals); k++ {
			s0 += vals[k] * x[rows[k]]
		}
		e := math.Exp((s0 + s1) + (s2 + s3) - 1)
		dst[c] = e
		sum += e
	}
	return sum
}

// MulVecRangeFast computes y[r] = (A x)_r for rows lo ≤ r < hi like
// MulVecRange, with four-wide independent accumulators per row. Not
// bit-identical to the in-order kernel; opt-in via
// maxent.Options.FastMath.
func (m *CSR) MulVecRangeFast(x, y []float64, lo, hi int) {
	for r := lo; r < hi; r++ {
		p, q := m.rowPtr[r], m.rowPtr[r+1]
		vals := m.vals[p:q]
		cols := m.colIdx[p:q:q]
		var s0, s1, s2, s3 float64
		k := 0
		for ; k+4 <= len(vals); k += 4 {
			s0 += vals[k] * x[cols[k]]
			s1 += vals[k+1] * x[cols[k+1]]
			s2 += vals[k+2] * x[cols[k+2]]
			s3 += vals[k+3] * x[cols[k+3]]
		}
		for ; k < len(vals); k++ {
			s0 += vals[k] * x[cols[k]]
		}
		y[r] = (s0 + s1) + (s2 + s3)
	}
}
