// Package linalg supplies the small dense/sparse linear-algebra kernels the
// Privacy-MaxEnt solver needs: vector arithmetic for the optimizers, a CSR
// sparse matrix for the constraint system A, and Gaussian-elimination rank
// for the paper's conciseness/completeness analyses (Theorems 2 and 3).
package linalg

import (
	"fmt"
	"math"
)

// Dot returns the inner product of two equal-length vectors. The
// accumulation is strictly sequential (index order), so results are
// bit-reproducible across layouts and refactors.
func Dot(a, b []float64) float64 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("linalg: Dot length mismatch %d vs %d", len(a), len(b)))
	}
	b = b[:len(a)]
	var s float64
	for i, v := range a {
		s += v * b[i]
	}
	return s
}

// Axpy computes y += alpha * x in place.
func Axpy(alpha float64, x, y []float64) {
	if len(x) != len(y) {
		panic(fmt.Sprintf("linalg: Axpy length mismatch %d vs %d", len(x), len(y)))
	}
	y = y[:len(x)]
	for i, v := range x {
		y[i] += alpha * v
	}
}

// Scale computes x *= alpha in place.
func Scale(alpha float64, x []float64) {
	for i := range x {
		x[i] *= alpha
	}
}

// Norm2 returns the Euclidean norm, guarding against overflow for large
// components by scaling.
func Norm2(x []float64) float64 {
	var maxAbs float64
	for _, v := range x {
		if a := math.Abs(v); a > maxAbs {
			maxAbs = a
		}
	}
	if maxAbs == 0 {
		return 0
	}
	var s float64
	for _, v := range x {
		r := v / maxAbs
		s += r * r
	}
	return maxAbs * math.Sqrt(s)
}

// NormInf returns the maximum absolute component.
func NormInf(x []float64) float64 {
	var m float64
	for _, v := range x {
		if a := math.Abs(v); a > m {
			m = a
		}
	}
	return m
}

// Fill sets every component of x to v.
func Fill(x []float64, v float64) {
	for i := range x {
		x[i] = v
	}
}

// CopyOf returns a fresh copy of x.
func CopyOf(x []float64) []float64 {
	return append([]float64(nil), x...)
}
