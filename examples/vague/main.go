// Vague demonstrates the Sec. 4.5 extension: background knowledge that is
// only approximately known. "P(Pneumonia | male, high school) is about
// 0.9" enters the MaxEnt problem as the ε-box [0.9−ε, 0.9+ε] instead of
// an equality, and the example sweeps ε to show how vagueness returns
// privacy to the individuals the exact statement would expose.
package main

import (
	"fmt"
	"log"

	"privacymaxent/internal/bucket"
	"privacymaxent/internal/constraint"
	"privacymaxent/internal/core"
	"privacymaxent/internal/dataset"
)

func main() {
	tbl := dataset.PaperExample()
	pub, err := bucket.FromPartition(tbl, dataset.PaperBuckets())
	if err != nil {
		log.Fatal(err)
	}
	truth, err := dataset.TrueConditional(tbl, pub.Universe())
	if err != nil {
		log.Fatal(err)
	}
	schema := tbl.Schema()
	gender := schema.Index("Gender")
	degree := schema.Index("Degree")
	know := []constraint.DistributionKnowledge{{
		Attrs: []int{gender, degree},
		Values: []int{
			schema.Attr(gender).MustCode("male"),
			schema.Attr(degree).MustCode("high school"),
		},
		SA: schema.SA().MustCode("Pneumonia"),
		P:  0.9,
	}}

	q := core.New(core.Config{Diversity: 3, MinSupport: 1})
	fmt.Println(`Knowledge: "P(Pneumonia | male, high school) ≈ 0.9 ± ε"`)
	fmt.Println("(the exact value in D is 0.5 — the adversary's belief overshoots)")
	fmt.Println()
	fmt.Println("  ε       est. accuracy   max disclosure   P*(Pneumonia | q3)")
	q3 := findQID(pub, "{male, high school}")
	s3 := schema.SA().MustCode("Pneumonia")
	for _, eps := range []float64{0, 0.05, 0.1, 0.2, 0.4, 1} {
		rep, err := q.QuantifyVague(pub, know, eps, truth)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-6.2f  %-14.4f  %-15.3f  %.3f\n",
			eps, rep.EstimationAccuracy, rep.MaxDisclosure, rep.Posterior.P(q3, s3))
	}
	fmt.Println()
	fmt.Println("At ε = 0 the box is the exact (overconfident) statement; as ε")
	fmt.Println("grows the maximum-entropy solution relaxes back toward the")
	fmt.Println("no-knowledge posterior (ε = 1 constrains nothing). Vagueness is")
	fmt.Println("the knob the paper proposes for bounding *how well* adversaries")
	fmt.Println("know, not just how much.")
}

func findQID(pub *bucket.Bucketized, display string) int {
	u := pub.Universe()
	for qid := 0; qid < u.Len(); qid++ {
		if u.Display(qid) == display {
			return qid
		}
	}
	log.Fatalf("QI tuple %s not found", display)
	return -1
}
