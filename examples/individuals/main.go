// Individuals demonstrates the paper's Section 6: background knowledge
// about specific people, modeled over the pseudonym-expanded published
// data of Figure 4. It replays all three knowledge forms from the paper's
// catalogue and shows how each reshapes the per-person posteriors.
package main

import (
	"fmt"
	"log"

	"privacymaxent/internal/bucket"
	"privacymaxent/internal/dataset"
	"privacymaxent/internal/individuals"
	"privacymaxent/internal/maxent"
)

func main() {
	tbl := dataset.PaperExample()
	pub, err := bucket.FromPartition(tbl, dataset.PaperBuckets())
	if err != nil {
		log.Fatal(err)
	}
	sp := individuals.NewSpace(pub)
	sa := tbl.Schema().SA()

	fmt.Println("Pseudonym-expanded publication (Figure 4):")
	u := pub.Universe()
	for qid := 0; qid < u.Len(); qid++ {
		persons := sp.PersonsWithQID(qid)
		fmt.Printf("  %s %-22s pseudonyms {", u.Label(qid), u.Display(qid))
		for i, p := range persons {
			if i > 0 {
				fmt.Print(", ")
			}
			fmt.Printf("i%d", p+1)
		}
		fmt.Println("}")
	}

	solveAndShow := func(title string, persons []individuals.Person, know []individuals.Knowledge) {
		fmt.Printf("\n%s\n", title)
		sol, err := individuals.Solve(sp, know, maxent.Options{})
		if err != nil {
			log.Fatal(err)
		}
		for _, p := range persons {
			id, err := sp.PersonID(p)
			if err != nil {
				log.Fatal(err)
			}
			post := sol.PersonPosterior(id)
			fmt.Printf("  i%-3d (%s)  ", id+1, u.Display(p.QID))
			for s, v := range post {
				if v > 1e-6 {
					fmt.Printf("%s:%.3f  ", sa.Value(s), v)
				}
			}
			fmt.Println()
		}
	}

	s1 := sa.MustCode("Breast Cancer")
	s4 := sa.MustCode("HIV")
	alice := individuals.Person{QID: 0, Index: 0}   // a q1 occurrence
	bob := individuals.Person{QID: 1, Index: 0}     // a q2 occurrence
	charlie := individuals.Person{QID: 4, Index: 0} // the unique q5 record

	solveAndShow("No individual knowledge (pseudonyms are exchangeable):",
		[]individuals.Person{alice, bob, charlie}, nil)

	// Form 1: "the probability that Alice (q1) has Breast Cancer is 0.2".
	solveAndShow(`Form 1 — "P(Breast Cancer | Alice) = 0.2":`,
		[]individuals.Person{alice},
		[]individuals.Knowledge{individuals.ValueProbability{Person: alice, SAs: []int{s1}, P: 0.2}})

	// Form 2: "Alice has either Breast Cancer or HIV".
	solveAndShow(`Form 2 — "Alice has either Breast Cancer or HIV":`,
		[]individuals.Person{alice},
		[]individuals.Knowledge{individuals.ValueProbability{Person: alice, SAs: []int{s1, s4}, P: 1}})

	// Form 3: "two people among Alice, Bob and Charlie have HIV".
	solveAndShow(`Form 3 — "two among Alice, Bob, Charlie have HIV":`,
		[]individuals.Person{alice, bob, charlie},
		[]individuals.Knowledge{individuals.GroupCount{
			Persons: []individuals.Person{alice, bob, charlie}, SA: s4, Count: 2,
		}})

	fmt.Println("\nEach statement is one linear ME constraint over the")
	fmt.Println("pseudonym terms P(i, Q, S, B); solving maximum entropy under")
	fmt.Println("it yields the least-biased per-person posteriors above.")
}
