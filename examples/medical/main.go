// Medical is the intro's motivating scenario at a realistic (small
// hospital) scale: a synthetic patient table with demographic
// quasi-identifiers and a diagnosis column, published as 4-diverse
// buckets. The example sweeps the Top-(K+, K−) knowledge bound and prints
// the (bound, privacy score) pairs the paper argues a data publisher
// should look at before releasing — plus the per-diagnosis disclosure a
// "male patients don't get breast cancer" style rule causes.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"privacymaxent/internal/core"
	"privacymaxent/internal/dataset"
	"privacymaxent/internal/metrics"
)

func main() {
	tbl := generatePatients(600, 42)
	q := core.New(core.Config{Diversity: 4, MinSupport: 3})

	pub, _, err := q.Bucketize(tbl)
	if err != nil {
		log.Fatal(err)
	}
	rules, err := q.MineRules(tbl)
	if err != nil {
		log.Fatal(err)
	}
	truth, err := dataset.TrueConditional(tbl, pub.Universe())
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("Patients: %d records, %d buckets (4-diversity), %d mined rules\n",
		tbl.Len(), pub.NumBuckets(), len(rules))
	fmt.Printf("Distinct diversity: %d, entropy diversity: %.2f\n\n",
		metrics.DistinctDiversity(pub), metrics.EntropyDiversity(pub))

	fmt.Println("Privacy as a function of the assumed knowledge bound (Sec. 4.3):")
	fmt.Println("  bound (K+,K-)   est. accuracy   max disclosure   posterior entropy")
	for _, k := range []int{0, 5, 10, 25, 50, 100, 200} {
		rep, err := q.QuantifyWithRules(pub, rules, core.Bound{KPos: k / 2, KNeg: k - k/2}, truth)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  (%3d, %3d)      %-14.4f  %-15.3f  %.3f bits\n",
			rep.Bound.KPos, rep.Bound.KNeg, rep.EstimationAccuracy, rep.MaxDisclosure, rep.PosteriorEntropy)
	}

	// Zoom in on the patients a modest bound already exposes.
	rep, err := q.QuantifyWithRules(pub, rules, core.Bound{KPos: 25, KNeg: 25}, truth)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nPatients whose diagnosis an adversary with the Top-(25,25)")
	fmt.Println("bound pins with ≥ 70% confidence:")
	u := pub.Universe()
	sa := tbl.Schema().SA()
	exposed := 0
	for qid := 0; qid < u.Len() && exposed < 12; qid++ {
		for s := 0; s < rep.Posterior.NumSA(); s++ {
			if p := rep.Posterior.P(qid, s); p >= 0.7 {
				fmt.Printf("  %-34s => %-16s %.3f  (%d record(s))\n",
					u.Display(qid), sa.Value(s), p, u.Count(qid))
				exposed++
			}
		}
	}
	if exposed == 0 {
		fmt.Println("  none — the publication withstands this bound")
	}
}

// generatePatients builds a correlated synthetic patient table: diagnosis
// depends on age band and sex (breast cancer is female-dominated,
// prostate cancer male-only, flu young-skewed), so strong positive and
// negative rules exist for the mining step.
func generatePatients(n int, seed int64) *dataset.Table {
	rng := rand.New(rand.NewSource(seed))
	sex := dataset.NewAttribute("Sex", dataset.QuasiIdentifier, []string{"male", "female"})
	age := dataset.NewAttribute("AgeBand", dataset.QuasiIdentifier, []string{"18-34", "35-49", "50-64", "65+"})
	zip := dataset.NewAttribute("Zip", dataset.QuasiIdentifier, []string{"13203", "13210", "13224", "13244"})
	diag := dataset.NewAttribute("Diagnosis", dataset.Sensitive, []string{
		"Flu", "Hypertension", "Diabetes", "Asthma", "Breast Cancer", "Prostate Cancer", "Pneumonia",
	})
	tbl := dataset.NewTable(dataset.MustSchema(sex, age, zip, diag))

	weights := func(sexV, ageV int) []float64 {
		w := []float64{30, 20, 15, 10, 4, 4, 8}
		if sexV == 0 { // male
			w[4] = 0.1 // breast cancer: rare
		} else {
			w[5] = 0 // prostate cancer: impossible
			w[4] = 8
		}
		switch ageV {
		case 0:
			w[0] *= 2
			w[1] *= 0.3
			w[2] *= 0.3
		case 2, 3:
			w[1] *= 2
			w[2] *= 1.8
			w[0] *= 0.5
		}
		return w
	}
	for i := 0; i < n; i++ {
		s := rng.Intn(2)
		a := rng.Intn(4)
		z := rng.Intn(4)
		d := sample(rng, weights(s, a))
		if err := tbl.AppendCoded([]int{s, a, z, d}); err != nil {
			panic(err)
		}
	}
	return tbl
}

func sample(rng *rand.Rand, w []float64) int {
	var total float64
	for _, v := range w {
		total += v
	}
	u := rng.Float64() * total
	for i, v := range w {
		u -= v
		if u < 0 {
			return i
		}
	}
	return len(w) - 1
}
