// Comparison publishes the same microdata with all three disguising
// methods the paper discusses — bucketization (Anatomy, the paper's
// focus), generalization (Mondrian k-anonymity, future-work direction 1)
// and randomization (randomized response, also direction 1) — quantifies
// each with Privacy-MaxEnt, and contrasts the probabilistic picture with
// the deterministic worst-case baseline of Martin et al. (Sec. 2).
package main

import (
	"fmt"
	"log"
	"math/rand"
	"time"

	"privacymaxent/internal/core"
	"privacymaxent/internal/dataset"
	"privacymaxent/internal/generalize"
	"privacymaxent/internal/maxent"
	"privacymaxent/internal/metrics"
	"privacymaxent/internal/randomize"
	"privacymaxent/internal/solver"
	"privacymaxent/internal/worstcase"
)

func main() {
	tbl := generateData(800, 17)
	truthU := dataset.NewUniverse(tbl)
	truth, err := dataset.TrueConditional(tbl, truthU)
	if err != nil {
		log.Fatal(err)
	}
	q := core.New(core.Config{Diversity: 4, MinSupport: 3})
	rules, err := q.MineRules(tbl)
	if err != nil {
		log.Fatal(err)
	}
	bound := core.Bound{KPos: 20, KNeg: 20}
	fmt.Printf("Same %d-record table, three disguising methods, adversary bound Top-(%d,%d):\n\n",
		tbl.Len(), bound.KPos, bound.KNeg)
	fmt.Println("method            est. accuracy   max disclosure   t-closeness   notes")

	// 1. Bucketization (Anatomy): QI exact, SA detached.
	anat, _, err := q.Bucketize(tbl)
	if err != nil {
		log.Fatal(err)
	}
	truthA, err := dataset.TrueConditional(tbl, anat.Universe())
	if err != nil {
		log.Fatal(err)
	}
	repA, err := q.QuantifyWithRules(anat, rules, bound, truthA)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("bucketization     %-14.4f  %-15.3f  %-12.3f  QI precision 1.000\n",
		repA.EstimationAccuracy, repA.MaxDisclosure, metrics.TCloseness(anat))

	// 2. Generalization (Mondrian): classes act as buckets for MaxEnt.
	gen, classes, err := generalize.Publish(tbl, 4)
	if err != nil {
		log.Fatal(err)
	}
	truthG, err := dataset.TrueConditional(tbl, gen.Universe())
	if err != nil {
		log.Fatal(err)
	}
	repG, err := q.QuantifyWithRules(gen, rules, bound, truthG)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("generalization    %-14.4f  %-15.3f  %-12.3f  QI precision %.3f\n",
		repG.EstimationAccuracy, repG.MaxDisclosure, metrics.TCloseness(gen),
		generalize.Precision(tbl, classes))

	// 3. Randomization (randomized response, rho = 0.6): SA perturbed,
	// reconstruction via the Sec. 4.5 inequality machinery.
	pub, mech, err := randomize.Perturb(tbl, 0.6, 5)
	if err != nil {
		log.Fatal(err)
	}
	est, _, err := randomize.Estimate(pub, mech, 3,
		maxent.Options{Solver: solver.Options{MaxIterations: 5000}})
	if err != nil {
		log.Fatal(err)
	}
	accR, err := metrics.EstimationAccuracy(remap(truth, est.Universe()), est)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("randomization     %-14.4f  %-15.3f  %-12s  rho=%.1f, SA values perturbed\n",
		accR, metrics.MaxDisclosure(est), "-", mech.Rho)

	// Per-stage cost of the Sec. 5.5 decomposition, from the report's own
	// timing breakdown (no external stopwatch needed).
	fmt.Println("\nPer-stage running time on the bucketization, decomposition on/off:")
	fmt.Println("decompose   select       formulate    solve        score        total")
	for _, noDecompose := range []bool{false, true} {
		qd := core.New(core.Config{Diversity: 4, MinSupport: 3, NoDecompose: noDecompose})
		rep, err := qd.QuantifyWithRules(anat, rules, bound, truthA)
		if err != nil {
			log.Fatal(err)
		}
		tm := rep.Timings
		fmt.Printf("%-10v  %-11v  %-11v  %-11v  %-11v  %v\n", !noDecompose,
			tm.Get(core.StageSelect).Round(time.Microsecond),
			tm.Get(core.StageFormulate).Round(time.Microsecond),
			tm.Get(core.StageSolve).Round(time.Microsecond),
			tm.Get(core.StageScore).Round(time.Microsecond),
			tm.Total().Round(time.Microsecond))
	}

	// Worst-case deterministic baseline on the bucketized publication.
	fmt.Println("\nWorst-case (Martin et al. [19]) disclosure on the bucketization,")
	fmt.Println("as a function of the number of negative statements k:")
	curve, err := worstcase.Curve(anat, 4)
	if err != nil {
		log.Fatal(err)
	}
	for k, p := range curve {
		fmt.Printf("  k=%d: %.3f\n", k, p)
	}
	fmt.Printf("full disclosure after %d statements (BreakPoint)\n", worstcase.BreakPoint(anat))
	fmt.Println("\nThe deterministic bound saturates after a handful of facts and")
	fmt.Println("says nothing about probabilistic or aggregate knowledge — the")
	fmt.Println("expressiveness gap Privacy-MaxEnt closes (paper, Sec. 2).")
}

// remap rebuilds a conditional over the target universe by QI key.
func remap(c *dataset.Conditional, target *dataset.Universe) *dataset.Conditional {
	out := dataset.NewConditional(target, c.NumSA())
	src := c.Universe()
	for qid := 0; qid < target.Len(); qid++ {
		if srcID, ok := src.QID(target.Key(qid)); ok {
			for s := 0; s < c.NumSA(); s++ {
				out.Set(qid, s, c.P(srcID, s))
			}
		}
	}
	return out
}

// generateData builds a compact correlated census-style table.
func generateData(n int, seed int64) *dataset.Table {
	rng := rand.New(rand.NewSource(seed))
	sex := dataset.NewAttribute("Sex", dataset.QuasiIdentifier, []string{"male", "female"})
	age := dataset.NewAttribute("Age", dataset.QuasiIdentifier, []string{"18-24", "25-34", "35-44", "45-54", "55-64", "65+"})
	edu := dataset.NewAttribute("Edu", dataset.QuasiIdentifier, []string{"hs", "college", "graduate"})
	zip := dataset.NewAttribute("Zip", dataset.QuasiIdentifier, []string{"z0", "z1", "z2", "z3", "z4", "z5", "z6", "z7"})
	inc := dataset.NewAttribute("Income", dataset.Sensitive, []string{"<30k", "30-60k", "60-100k", ">100k", "none"})
	tbl := dataset.NewTable(dataset.MustSchema(sex, age, edu, zip, inc))
	for i := 0; i < n; i++ {
		s := rng.Intn(2)
		a := rng.Intn(6)
		e := rng.Intn(3)
		z := rng.Intn(8)
		w := []float64{3, 3, 2, 1, 1}
		// Income correlates with education and age.
		w[e+1] += 4
		if a <= 1 {
			w[0] += 2
			w[4] += 1
		}
		if a >= 4 && e == 2 {
			w[3] += 3
		}
		var total float64
		for _, v := range w {
			total += v
		}
		u := rng.Float64() * total
		inc := 0
		for j, v := range w {
			u -= v
			if u < 0 {
				inc = j
				break
			}
		}
		if err := tbl.AppendCoded([]int{s, a, e, z, inc}); err != nil {
			panic(err)
		}
	}
	return tbl
}
