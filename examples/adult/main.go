// Adult runs the paper's evaluation pipeline end to end on the synthetic
// Adult-like workload (the stand-in for the UCI Adult data set, see
// DESIGN.md): generate correlated microdata with the education SA,
// publish it at 5-diversity, mine the Top-(K+, K−) association-rule
// bound, and print a miniature Figure 5 — estimation accuracy versus the
// amount of background knowledge, for negative-only, positive-only and
// mixed rule budgets.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"privacymaxent/internal/experiments"
)

func main() {
	records := flag.Int("records", 1000, "synthetic Adult records (paper: 14210)")
	seed := flag.Int64("seed", 7, "generator seed")
	flag.Parse()

	in, err := experiments.NewInstance(experiments.Config{
		Records:     *records,
		Seed:        *seed,
		MaxRuleSize: 2,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Adult-like workload: %d records -> %d buckets of 5 (5-diversity),\n",
		in.Table.Len(), in.Data.NumBuckets())
	fmt.Printf("%d distinct QI tuples, %d association rules mined (support >= %d)\n\n",
		in.Data.Universe().Len(), len(in.Rules), in.Config.MinSupport)

	series, err := experiments.Figure5(in)
	if err != nil {
		log.Fatal(err)
	}
	if err := experiments.PrintSeries(os.Stdout,
		"Mini Figure 5: estimation accuracy vs background knowledge K",
		"K", series); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nReading the table: every curve falls as K grows (more")
	fmt.Println("knowledge brings the adversary closer to the truth), drops")
	fmt.Println("steeply for small K, flattens as rules become redundant, and")
	fmt.Println("the mixed (K+, K-) budget falls fastest — the three findings")
	fmt.Println("of the paper's Figure 5.")
}
