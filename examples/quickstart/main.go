// Quickstart walks the paper's running example (Figure 1) end to end:
// the 10-record medical table, its 3-bucket publication, the MaxEnt
// posterior with no background knowledge, and then the dramatic effect of
// the two Sec. 3.1 knowledge statements P(s1|q2) = 0 and
// P(s1 or s2|q3) = 0, which pin bucket 1's assignment exactly.
package main

import (
	"fmt"
	"log"

	"privacymaxent/internal/bucket"
	"privacymaxent/internal/constraint"
	"privacymaxent/internal/core"
	"privacymaxent/internal/dataset"
)

func main() {
	tbl := dataset.PaperExample()
	pub, err := bucket.FromPartition(tbl, dataset.PaperBuckets())
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("Published data D' (Figure 1(c) abstract form):")
	u := pub.Universe()
	sa := tbl.Schema().SA()
	for b := 0; b < pub.NumBuckets(); b++ {
		bk := pub.Bucket(b)
		fmt.Printf("  bucket %d: QI = [", b+1)
		for i, qid := range bk.QIDs() {
			if i > 0 {
				fmt.Print(" ")
			}
			fmt.Print(u.Label(qid))
		}
		fmt.Print("]  SA = {")
		first := true
		for s := 0; s < pub.SACardinality(); s++ {
			for n := 0; n < bk.SACount(s); n++ {
				if !first {
					fmt.Print(", ")
				}
				fmt.Printf("s%d", s+1)
				first = false
			}
		}
		fmt.Println("}")
	}

	truth, err := dataset.TrueConditional(tbl, u)
	if err != nil {
		log.Fatal(err)
	}
	q := core.New(core.Config{Diversity: 3, MinSupport: 1})

	// 1. No background knowledge: the standard uniform-within-bucket
	// estimate (Theorem 5).
	plain, err := q.Quantify(pub, nil, truth)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nWithout background knowledge:\n")
	fmt.Printf("  estimation accuracy: %.4f, max disclosure: %.3f\n",
		plain.EstimationAccuracy, plain.MaxDisclosure)
	printPosterior(pub, sa, plain)

	// 2. The Sec. 3.1 knowledge: P(s1|q2) = 0 and P(s1 or s2|q3) = 0.
	s1 := sa.MustCode("Breast Cancer")
	s2 := sa.MustCode("Flu")
	know := []constraint.DistributionKnowledge{
		tupleKnowledge(tbl, u, 1, s1, 0), // P(s1 | q2) = 0
		tupleKnowledge(tbl, u, 2, s1, 0), // P(s1 | q3) = 0
		tupleKnowledge(tbl, u, 2, s2, 0), // P(s2 | q3) = 0
	}
	withK, err := q.Quantify(pub, know, truth)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nWith P(s1|q2)=0 and P(s1 or s2|q3)=0 (Sec. 3.1):\n")
	fmt.Printf("  estimation accuracy: %.4f, max disclosure: %.3f\n",
		withK.EstimationAccuracy, withK.MaxDisclosure)
	fmt.Printf("  presolve alone fixed %d of %d probability terms\n",
		withK.Solution.Stats.FixedVariables,
		withK.Solution.Stats.FixedVariables+withK.Solution.Stats.ActiveVariables)
	printPosterior(pub, sa, withK)
	fmt.Println("\nNote how bucket 1 is fully resolved: q3 must map to s3,")
	fmt.Println("q2 must map to s2, and the two q1 records split s1 and s2.")
	fmt.Println("\nThe estimation-accuracy metric *rose* here because this")
	fmt.Println("hypothetical knowledge contradicts the original data (in D,")
	fmt.Println("q3 does carry s2) — exactly Sec. 4.2's observation that")
	fmt.Println("knowledge inconsistent with D misleads the adversary. The")
	fmt.Println("evaluation figures always mine their knowledge from D itself.")
}

// tupleKnowledge pins P(sa | full QI tuple of qid) = p.
func tupleKnowledge(tbl *dataset.Table, u *dataset.Universe, qid, sa int, p float64) constraint.DistributionKnowledge {
	return constraint.DistributionKnowledge{
		Attrs:  append([]int(nil), tbl.Schema().QIIndices()...),
		Values: append([]int(nil), u.Codes(qid)...),
		SA:     sa,
		P:      p,
	}
}

func printPosterior(pub *bucket.Bucketized, sa *dataset.Attribute, rep *core.Report) {
	u := pub.Universe()
	fmt.Println("  posterior P(S | Q):")
	for qid := 0; qid < u.Len(); qid++ {
		fmt.Printf("    %s %-22s", u.Label(qid), u.Display(qid))
		for s := 0; s < rep.Posterior.NumSA(); s++ {
			if p := rep.Posterior.P(qid, s); p > 1e-9 {
				fmt.Printf("  s%d:%.3f", s+1, p)
			}
		}
		fmt.Println()
	}
}
