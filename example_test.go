package privacymaxent_test

import (
	"fmt"
	"log"

	"privacymaxent"
)

// buildPatientTable constructs a small medical microdata table.
func buildPatientTable() *privacymaxent.Table {
	gender := privacymaxent.NewAttribute("Gender", privacymaxent.QuasiIdentifier, []string{"male", "female"})
	age := privacymaxent.NewAttribute("Age", privacymaxent.QuasiIdentifier, []string{"young", "old"})
	disease := privacymaxent.NewAttribute("Disease", privacymaxent.Sensitive, []string{"Flu", "HIV", "Cancer"})
	schema, err := privacymaxent.NewSchema(gender, age, disease)
	if err != nil {
		log.Fatal(err)
	}
	t := privacymaxent.NewTable(schema)
	rows := [][3]string{
		{"male", "young", "Flu"}, {"male", "young", "Flu"}, {"male", "old", "HIV"},
		{"female", "young", "Cancer"}, {"female", "old", "Flu"}, {"female", "old", "HIV"},
		{"male", "old", "Cancer"}, {"female", "young", "Flu"}, {"male", "young", "HIV"},
		{"female", "old", "Cancer"}, {"male", "old", "Flu"}, {"female", "young", "HIV"},
	}
	for _, r := range rows {
		if err := t.Append(r[0], r[1], r[2]); err != nil {
			log.Fatal(err)
		}
	}
	return t
}

// Example runs the end-to-end pipeline: publish at 3-diversity, assume
// the adversary knows the Top-(2, 2) strongest association rules, and
// read the privacy scores.
func Example() {
	table := buildPatientTable()
	q := privacymaxent.New(privacymaxent.Config{Diversity: 3, MinSupport: 2})
	report, err := q.Run(table, privacymaxent.Bound{KPos: 2, KNeg: 2})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("knowledge constraints applied: %d\n", len(report.Knowledge))
	fmt.Printf("constraints satisfied: %v\n", report.Solution.Stats.MaxViolation < 1e-5)
	fmt.Printf("estimation accuracy >= 0: %v\n", report.EstimationAccuracy >= 0)
	fmt.Printf("max disclosure <= 1: %v\n", report.MaxDisclosure <= 1.0000001)
	// Output:
	// knowledge constraints applied: 4
	// constraints satisfied: true
	// estimation accuracy >= 0: true
	// max disclosure <= 1: true
}

// ExampleQuantifier_Quantify applies a hand-written knowledge statement —
// the paper's "it is rare for males to have breast cancer" pattern —
// instead of mined rules.
func ExampleQuantifier_Quantify() {
	table := buildPatientTable()
	pub, _, err := privacymaxent.Anatomize(table, privacymaxent.BucketOptions{L: 3, ExemptMostFrequent: true})
	if err != nil {
		log.Fatal(err)
	}
	schema := table.Schema()
	genderAttr, _ := schema.AttrByName("Gender")
	male, _ := genderAttr.Code("male")
	cancer, _ := schema.SA().Code("Cancer")
	knowledge := []privacymaxent.DistributionKnowledge{{
		Attrs:  []int{schema.Index("Gender")},
		Values: []int{male},
		SA:     cancer,
		P:      0, // "males in this table never have Cancer" (counterfactual)
	}}
	q := privacymaxent.New(privacymaxent.Config{Diversity: 3})
	report, err := q.Quantify(pub, knowledge, nil)
	if err != nil {
		log.Fatal(err)
	}
	// Every male QI tuple now carries zero Cancer mass.
	u := report.Posterior.Universe()
	zeroed := true
	for qid := 0; qid < u.Len(); qid++ {
		if u.Codes(qid)[0] == male && report.Posterior.P(qid, cancer) > 1e-9 {
			zeroed = false
		}
	}
	fmt.Printf("male cancer posteriors zeroed: %v\n", zeroed)
	// Output:
	// male cancer posteriors zeroed: true
}

// ExampleMineRules shows the Top-(K+, K−) bound construction of Sec. 4.4.
func ExampleMineRules() {
	table := buildPatientTable()
	rules, err := privacymaxent.MineRules(table, privacymaxent.MineOptions{MinSupport: 2})
	if err != nil {
		log.Fatal(err)
	}
	top := privacymaxent.TopK(rules, 1, 1)
	fmt.Printf("selected %d rules; strongest has confidence %.2f\n", len(top), top[0].Confidence)
	// Output:
	// selected 2 rules; strongest has confidence 1.00
}
