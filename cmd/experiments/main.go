// Command experiments regenerates the data series behind every table and
// figure of the paper's evaluation (Sec. 7), printing them as aligned
// text tables.
//
// Usage:
//
//	experiments -figure all                 # everything, scaled-down defaults
//	experiments -figure 5 -records 14210    # Figure 5 at the paper's full size
//	experiments -figure 7b -buckets 200,400,800,1600 -constraints 0,100,1000,10000
//
// Figures: 5, 6, 7a, 7b, 7c, stages (per-stage running-time breakdown
// from Report.Timings), solvers (Malouf-style ablation), decomposition
// (Sec. 5.5 ablation), baseline, frontier (per-scheme disclosure vs
// utility sweep across Anatomy, Mondrian and randomized response; -out
// additionally writes the points as CSV).
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"privacymaxent/internal/experiments"
)

func main() {
	var (
		figure      = flag.String("figure", "all", "which figure to regenerate: 5, 6, 7a, 7b, 7c, stages, solvers, decomposition, baseline, frontier, all")
		records     = flag.Int("records", 1500, "synthetic Adult records (paper: 14210)")
		seed        = flag.Int64("seed", 1, "generator seed")
		diversity   = flag.Int("l", 5, "L-diversity / bucket size")
		minSupport  = flag.Int("minsupport", 3, "rule support threshold")
		maxRuleSize = flag.Int("maxrulesize", 3, "largest QI-subset size mined for the rule pool")
		maxT        = flag.Int("maxt", 4, "largest T for Figure 6 (paper: 8)")
		buckets     = flag.String("buckets", "50,100,200,400", "bucket counts for Figures 7b/7c")
		constraints = flag.String("constraints", "0,100,1000", "knowledge sizes for Figures 7b/7c")
		k           = flag.Int("k", 50, "knowledge size for the ablations")
		kGrid       = flag.String("ks", "", "comma-separated K grid for Figures 5 and 6 (default: geometric sweep)")
		maxIter     = flag.Int("maxiter", 0, "LBFGS iteration budget for accuracy solves (default 6000)")
		workers     = flag.Int("workers", 0, "concurrent grid evaluations in the sweep figures (0 = GOMAXPROCS, <0 = sequential)")
		kernelWork  = flag.Int("kernel-workers", 0, "worker shards for the in-solve gradient/exp kernels (0 = inherit, <0 = serial); bit-identical output at any value")
		reduce      = flag.Bool("reduce", false, "structural presolve: closed-form untouched buckets + Schur-eliminated invariant rows")
		fastMath    = flag.Bool("fast-math", false, "reassociated multi-accumulator solve kernels (not bit-identical)")
		auditDir    = flag.String("audit-dir", "", "write per-point solve audits (figures 7a/7b/7c and the solver ablation) into this directory")
		out         = flag.String("out", "", "write the frontier points as CSV to this file (frontier figure only)")
	)
	flag.Parse()

	if *auditDir != "" {
		if err := os.MkdirAll(*auditDir, 0o755); err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(1)
		}
	}
	cfg := experiments.Config{
		Records:       *records,
		Seed:          *seed,
		Diversity:     *diversity,
		MinSupport:    *minSupport,
		MaxRuleSize:   *maxRuleSize,
		MaxIterations: *maxIter,
		Workers:       *workers,
		KernelWorkers: *kernelWork,
		Reduce:        *reduce,
		FastMath:      *fastMath,
		AuditDir:      *auditDir,
	}
	if err := run(*figure, cfg, *maxT, parseInts(*buckets), parseInts(*constraints), *k, parseInts(*kGrid), *out); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

func parseInts(s string) []int {
	var out []int
	for _, p := range strings.Split(s, ",") {
		if p = strings.TrimSpace(p); p != "" {
			if v, err := strconv.Atoi(p); err == nil {
				out = append(out, v)
			}
		}
	}
	return out
}

func run(figure string, cfg experiments.Config, maxT int, buckets, constraints []int, k int, kGrid []int, out string) error {
	needsInstance := map[string]bool{"5": true, "6": true, "7a": true, "stages": true, "solvers": true, "decomposition": true, "baseline": true, "frontier": true, "all": true}
	var in *experiments.Instance
	var err error
	if needsInstance[figure] {
		fmt.Printf("generating workload: %d records, seed %d, L=%d ...\n", cfg.Records, cfg.Seed, cfg.Diversity)
		in, err = experiments.NewInstance(cfg)
		if err != nil {
			return err
		}
		fmt.Printf("workload: %d buckets, %d distinct QI tuples, %d mined rules\n\n",
			in.Data.NumBuckets(), in.Data.Universe().Len(), len(in.Rules))
	}

	want := func(name string) bool { return figure == name || figure == "all" }

	if want("baseline") {
		acc, distinct, entropy, err := experiments.BaselineAccuracy(in)
		if err != nil {
			return err
		}
		fmt.Printf("== Baseline (no background knowledge) ==\n")
		fmt.Printf("estimation accuracy  %.6g\n", acc)
		fmt.Printf("distinct L-diversity %d\n", distinct)
		fmt.Printf("entropy L-diversity  %.3f\n\n", entropy)
	}
	if want("5") {
		series, err := experiments.Figure5(in, kGrid...)
		if err != nil {
			return err
		}
		if err := experiments.PrintSeries(os.Stdout, "Figure 5: positive and negative association rules", "K", series); err != nil {
			return err
		}
		fmt.Println()
	}
	if want("6") {
		series, err := experiments.Figure6(in, maxT, kGrid...)
		if err != nil {
			return err
		}
		if err := experiments.PrintSeries(os.Stdout, "Figure 6: number of QI attributes in knowledge", "K", series); err != nil {
			return err
		}
		fmt.Println()
	}
	if want("7a") {
		series, err := experiments.Figure7a(in)
		if err != nil {
			return err
		}
		if err := experiments.PrintSeries(os.Stdout, "Figure 7(a): performance vs knowledge", "#constraints", series); err != nil {
			return err
		}
		fmt.Println()
	}
	if want("7b") || want("7c") {
		timeS, iterS, err := experiments.Figure7bc(cfg, buckets, constraints)
		if err != nil {
			return err
		}
		if want("7b") {
			if err := experiments.PrintSeries(os.Stdout, "Figure 7(b): running time vs data size", "#buckets", timeS); err != nil {
				return err
			}
			fmt.Println()
		}
		if want("7c") {
			if err := experiments.PrintSeries(os.Stdout, "Figure 7(c): iterations vs data size", "#buckets", iterS); err != nil {
				return err
			}
			fmt.Println()
		}
	}
	if want("frontier") {
		points, err := experiments.Frontier(in, k, k)
		if err != nil {
			return err
		}
		fmt.Printf("== Privacy–utility frontier (Top-(%d,%d) knowledge) ==\n", k, k)
		if err := experiments.PrintFrontier(os.Stdout, points); err != nil {
			return err
		}
		fmt.Println()
		if out != "" {
			f, err := os.Create(out)
			if err != nil {
				return err
			}
			if err := experiments.WriteFrontierCSV(f, points); err != nil {
				f.Close()
				return err
			}
			if err := f.Close(); err != nil {
				return err
			}
			fmt.Printf("frontier CSV written to %s\n\n", out)
		}
	}
	if want("stages") {
		series, err := experiments.StageBreakdown(in, kGrid)
		if err != nil {
			return err
		}
		if err := experiments.PrintSeries(os.Stdout, "Per-stage running time (seconds) vs knowledge", "#rules", series); err != nil {
			return err
		}
		fmt.Println()
	}
	if want("solvers") {
		results, err := experiments.CompareAlgorithms(in, k, nil)
		if err != nil {
			return err
		}
		if err := experiments.PrintAlgorithmComparison(os.Stdout, results); err != nil {
			return err
		}
		fmt.Println()
	}
	if want("decomposition") {
		results, err := experiments.CompareDecomposition(in, k)
		if err != nil {
			return err
		}
		if err := experiments.PrintDecomposition(os.Stdout, results); err != nil {
			return err
		}
		fmt.Println()
	}
	return nil
}
