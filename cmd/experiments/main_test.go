package main

import (
	"reflect"
	"testing"

	"privacymaxent/internal/experiments"
)

func TestParseInts(t *testing.T) {
	got := parseInts(" 1,2 , 30,,x")
	want := []int{1, 2, 30}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("parseInts = %v, want %v", got, want)
	}
	if out := parseInts(""); out != nil {
		t.Fatalf("parseInts(\"\") = %v, want nil", out)
	}
}

// TestRunBaseline drives the CLI's baseline figure at a tiny size,
// checking the plumbing end to end.
func TestRunBaseline(t *testing.T) {
	cfg := experiments.Config{Records: 200, Seed: 3, MaxRuleSize: 1}
	if err := run("baseline", cfg, 1, nil, nil, 5, nil, ""); err != nil {
		t.Fatal(err)
	}
}

func TestRunUnknownFigureIsNoop(t *testing.T) {
	// An unrecognized figure name needs no instance and produces no
	// output; it must not error.
	if err := run("7b", experiments.Config{Records: 120, Seed: 3, MaxRuleSize: 1}, 1, []int{10, 20}, []int{0}, 5, nil, ""); err != nil {
		t.Fatal(err)
	}
}
