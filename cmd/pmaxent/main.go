// Command pmaxent quantifies the privacy of a bucketized publication of
// microdata using Privacy-MaxEnt.
//
// Three modes:
//
//	pmaxent -demo
//	    Run on the paper's built-in Figure 1 example.
//
//	pmaxent -input data.csv -sa Disease [-id Name,SSN] [-l 5] \
//	        [-kpos 50] [-kneg 50] [-minsupport 3] [-sizes 1,2] \
//	        [-algorithm lbfgs] [-top 10] [-publish out.json] \
//	        [-export-knowledge k.json]
//	    Bucketize the CSV to L-diversity with the Anatomy method, mine the
//	    Top-(K+, K−) strongest association rules from the original data as
//	    the assumed adversary background knowledge, solve the MaxEnt
//	    problem, and print the privacy report (estimation accuracy against
//	    the original data, maximum disclosure, the riskiest QI tuples).
//	    -publish saves the published view; -export-knowledge saves the
//	    applied knowledge statements for auditing and replay.
//
//	pmaxent -published out.json [-knowledge k.json] [-algorithm lbfgs] [-top 10]
//	    Re-analyze an existing publication without the original data:
//	    knowledge comes from a JSON statement file
//	    ([{"if": {"Gender": "male"}, "then": "Breast Cancer", "p": 0}, ...]).
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	_ "net/http/pprof"
	"os"
	"sort"
	"strconv"
	"strings"

	"privacymaxent/internal/audit"
	"privacymaxent/internal/bucket"
	"privacymaxent/internal/constraint"
	"privacymaxent/internal/core"
	"privacymaxent/internal/dataset"
	"privacymaxent/internal/maxent"
	"privacymaxent/internal/telemetry"
)

// options collects the CLI configuration.
type options struct {
	input           string
	saName          string
	idNames         string
	published       string
	knowledgeFile   string
	eps             float64
	publishOut      string
	exportKnowledge string
	diversity       int
	kPos, kNeg      int
	minSupport      int
	sizes           string
	algorithm       string
	kernelWorkers   int
	reduce          bool
	fastMath        bool
	top             int
	demo            bool
	trace           bool
	traceOut        string
	metricsOut      string
	pprofAddr       string
	auditOut        string
	solveLog        string
	strict          bool
	feasTol         float64
}

func main() {
	var o options
	flag.StringVar(&o.input, "input", "", "input CSV file (first row is the header)")
	flag.StringVar(&o.saName, "sa", "", "name of the sensitive attribute column")
	flag.StringVar(&o.idNames, "id", "", "comma-separated identifier columns (removed before publishing)")
	flag.StringVar(&o.published, "published", "", "published-view JSON to analyze instead of a CSV")
	flag.StringVar(&o.knowledgeFile, "knowledge", "", "knowledge-statement JSON applied in -published mode")
	flag.Float64Var(&o.eps, "eps", 0, "vagueness of the knowledge (Sec. 4.5): statements become ±eps boxes instead of equalities")
	flag.StringVar(&o.publishOut, "publish", "", "write the published view as JSON to this path")
	flag.StringVar(&o.exportKnowledge, "export-knowledge", "", "write the applied knowledge statements as JSON to this path")
	flag.IntVar(&o.diversity, "l", 5, "L-diversity parameter and bucket size")
	flag.IntVar(&o.kPos, "kpos", 0, "number of positive association rules the adversary knows (K+)")
	flag.IntVar(&o.kNeg, "kneg", 0, "number of negative association rules the adversary knows (K-)")
	flag.IntVar(&o.minSupport, "minsupport", 3, "minimum association-rule support (records)")
	flag.StringVar(&o.sizes, "sizes", "", "comma-separated QI-subset sizes to mine (default: all)")
	flag.StringVar(&o.algorithm, "algorithm", "lbfgs", "dual solver: lbfgs, gis, iis, steepest, newton")
	flag.IntVar(&o.kernelWorkers, "kernel-workers", 0, "worker shards for the in-solve gradient/exp kernels (0 = inherit the solve's worker count, <0 = serial); the posterior is bit-identical at any value")
	flag.BoolVar(&o.reduce, "reduce", false, "structural presolve: closed-form untouched buckets and Schur-eliminate bucket-local invariant rows before the numeric solve")
	flag.BoolVar(&o.fastMath, "fast-math", false, "reassociated multi-accumulator solve kernels (faster, not bit-identical to the exact kernels)")
	flag.IntVar(&o.top, "top", 10, "number of riskiest QI tuples to print")
	flag.BoolVar(&o.demo, "demo", false, "run on the paper's built-in example instead of a file")
	flag.BoolVar(&o.trace, "trace", false, "emit a JSON-lines span trace and metrics snapshot to stderr")
	flag.StringVar(&o.traceOut, "trace-out", "", "write the JSON-lines span trace to this file (implies tracing)")
	flag.StringVar(&o.metricsOut, "metrics-out", "", "write a Prometheus-style metrics snapshot to this file")
	flag.StringVar(&o.pprofAddr, "pprof", "", "serve net/http/pprof and expvar metrics on this address (e.g. localhost:6060)")
	flag.StringVar(&o.auditOut, "audit-out", "", "write the solve audit (per-family residuals, binding knowledge, trajectory) as JSON to this file")
	flag.StringVar(&o.solveLog, "solve-log", "", "write structured solve lifecycle events as JSON lines to this file")
	flag.BoolVar(&o.strict, "strict", false, "exit non-zero when the solve did not converge or violates -feastol")
	flag.Float64Var(&o.feasTol, "feastol", 1e-6, "feasibility tolerance for the audit and the -strict health check")
	flag.Parse()

	if err := run(os.Stdout, o); err != nil {
		fmt.Fprintln(os.Stderr, "pmaxent:", err)
		os.Exit(1)
	}
}

func run(w io.Writer, o options) error {
	alg, err := parseAlgorithm(o.algorithm)
	if err != nil {
		return err
	}
	ctx, finish, err := setupTelemetry(o)
	if err != nil {
		return err
	}
	if o.published != "" {
		err = runPublished(ctx, w, o, alg)
	} else {
		err = runOriginal(ctx, w, o, alg)
	}
	if ferr := finish(); err == nil {
		err = ferr
	}
	return err
}

// setupTelemetry builds the run context from the observability flags: a
// tracer when -trace/-trace-out is set, a metrics registry when any of
// -trace/-metrics-out/-pprof is set, a structured solve-event logger for
// -solve-log, and the pprof+expvar HTTP server for -pprof. The returned
// finish func flushes the metrics snapshot and closes the log files.
func setupTelemetry(o options) (context.Context, func() error, error) {
	ctx := context.Background()
	finish := func() error { return nil }
	needMetrics := o.trace || o.metricsOut != "" || o.pprofAddr != ""
	needTrace := o.trace || o.traceOut != ""
	if !needMetrics && !needTrace && o.solveLog == "" {
		return ctx, finish, nil
	}

	var logFile *os.File
	if o.solveLog != "" {
		f, err := os.Create(o.solveLog)
		if err != nil {
			return nil, nil, fmt.Errorf("creating solve log: %w", err)
		}
		logFile = f
		ctx = telemetry.WithLogger(ctx, slog.New(slog.NewJSONHandler(f, nil)))
	}

	var reg *telemetry.Registry
	if needMetrics {
		reg = telemetry.NewRegistry()
		ctx = telemetry.WithMetrics(ctx, reg)
	}
	if o.pprofAddr != "" {
		telemetry.PublishExpvar("pmaxent", reg)
		ln := o.pprofAddr
		go func() {
			// net/http/pprof and expvar register on the default mux.
			if err := http.ListenAndServe(ln, nil); err != nil {
				fmt.Fprintln(os.Stderr, "pmaxent: pprof server:", err)
			}
		}()
		fmt.Fprintf(os.Stderr, "pprof and expvar on http://%s/debug/pprof/ and /debug/vars\n", ln)
	}

	var traceFile *os.File
	if needTrace {
		traceW := io.Writer(os.Stderr)
		if o.traceOut != "" {
			f, err := os.Create(o.traceOut)
			if err != nil {
				return nil, nil, fmt.Errorf("creating trace output: %w", err)
			}
			traceFile, traceW = f, f
		}
		ctx = telemetry.WithTracer(ctx, telemetry.NewTracer(telemetry.NewJSONSink(traceW)))
	}

	finish = func() error {
		if logFile != nil {
			if err := logFile.Close(); err != nil {
				return fmt.Errorf("closing solve log: %w", err)
			}
		}
		if traceFile != nil {
			if err := traceFile.Close(); err != nil {
				return fmt.Errorf("closing trace output: %w", err)
			}
		}
		if o.metricsOut != "" {
			if err := writeFile(o.metricsOut, reg.WriteProm); err != nil {
				return fmt.Errorf("writing metrics: %w", err)
			}
		} else if o.trace {
			return reg.WriteProm(os.Stderr)
		}
		return nil
	}
	return ctx, finish, nil
}

// runOriginal covers -demo and -input: the full pipeline from original
// data, with ground-truth scoring.
func runOriginal(ctx context.Context, w io.Writer, o options, alg maxent.Algorithm) error {
	var tbl *dataset.Table
	switch {
	case o.demo:
		tbl = dataset.PaperExample()
		if o.diversity == 5 {
			o.diversity = 3 // the 10-record example cannot fill buckets of 5 distinctly
		}
		if o.minSupport == 3 {
			o.minSupport = 1
		}
	case o.input == "":
		return fmt.Errorf("one of -input, -published or -demo is required")
	default:
		if o.saName == "" {
			return fmt.Errorf("-sa is required with -input")
		}
		roles := map[string]dataset.Role{o.saName: dataset.Sensitive}
		for _, id := range splitNonEmpty(o.idNames) {
			roles[id] = dataset.Identifier
		}
		f, err := os.Open(o.input)
		if err != nil {
			return err
		}
		defer f.Close()
		var rerr error
		tbl, rerr = dataset.ReadCSV(f, roles)
		if rerr != nil {
			return rerr
		}
		if tbl.Schema().SAIndex() < 0 {
			return fmt.Errorf("sensitive column %q not found in header", o.saName)
		}
	}

	ruleSizes, err := parseSizes(o.sizes)
	if err != nil {
		return err
	}
	q := core.New(core.Config{
		Diversity:  o.diversity,
		MinSupport: o.minSupport,
		RuleSizes:  ruleSizes,
		Solve:      maxent.Options{Algorithm: alg, KernelWorkers: o.kernelWorkers, Reduce: o.reduce, FastMath: o.fastMath},
		Audit:      auditConfig(o),
	})

	pub, _, err := q.BucketizeContext(ctx, tbl)
	if err != nil {
		return fmt.Errorf("bucketize: %w", err)
	}
	rules, err := q.MineRulesContext(ctx, tbl)
	if err != nil {
		return fmt.Errorf("mining rules: %w", err)
	}
	truth, err := dataset.TrueConditional(tbl, pub.Universe())
	if err != nil {
		return err
	}
	rep, err := q.QuantifyWithRulesContext(ctx, pub, rules, core.Bound{KPos: o.kPos, KNeg: o.kNeg}, truth)
	if err != nil {
		return err
	}

	if o.publishOut != "" {
		if err := writeFile(o.publishOut, func(f io.Writer) error { return bucket.WriteJSON(f, pub) }); err != nil {
			return fmt.Errorf("writing published view: %w", err)
		}
		fmt.Fprintf(w, "published view written to %s\n", o.publishOut)
	}
	if o.exportKnowledge != "" {
		if err := writeFile(o.exportKnowledge, func(f io.Writer) error {
			return constraint.WriteKnowledgeJSON(f, tbl.Schema(), rep.Knowledge)
		}); err != nil {
			return fmt.Errorf("writing knowledge: %w", err)
		}
		fmt.Fprintf(w, "knowledge statements written to %s\n", o.exportKnowledge)
	}

	printReport(w, tbl.Schema(), tbl.Len(), rep, o.top)
	if err := writeAudit(w, o, rep); err != nil {
		return err
	}
	return checkSolveHealth(o, rep)
}

// runPublished analyzes an existing publication JSON with an explicit
// knowledge file; no ground truth is available.
func runPublished(ctx context.Context, w io.Writer, o options, alg maxent.Algorithm) error {
	f, err := os.Open(o.published)
	if err != nil {
		return err
	}
	defer f.Close()
	pub, err := bucket.ReadJSON(f)
	if err != nil {
		return err
	}
	var knowledge []constraint.DistributionKnowledge
	if o.knowledgeFile != "" {
		kf, err := os.Open(o.knowledgeFile)
		if err != nil {
			return err
		}
		defer kf.Close()
		knowledge, err = constraint.ParseKnowledgeJSON(kf, pub.Schema())
		if err != nil {
			return err
		}
	}
	q := core.New(core.Config{Solve: maxent.Options{Algorithm: alg, KernelWorkers: o.kernelWorkers, Reduce: o.reduce, FastMath: o.fastMath}, Audit: auditConfig(o)})
	var rep *core.Report
	if o.eps > 0 {
		rep, err = q.QuantifyVagueContext(ctx, pub, knowledge, o.eps, nil)
	} else {
		rep, err = q.QuantifyContext(ctx, pub, knowledge, nil)
	}
	if err != nil {
		return err
	}
	printReport(w, pub.Schema(), pub.N(), rep, o.top)
	if err := writeAudit(w, o, rep); err != nil {
		return err
	}
	return checkSolveHealth(o, rep)
}

// auditConfig turns the -audit-out flag into the core audit option.
func auditConfig(o options) *audit.Options {
	if o.auditOut == "" {
		return nil
	}
	return &audit.Options{Tolerance: o.feasTol}
}

// writeAudit persists the solve audit for -audit-out. The vague (-eps)
// mode solves an inequality program whose solution carries no equality
// audit; asking for one there is a user error.
func writeAudit(w io.Writer, o options, rep *core.Report) error {
	if o.auditOut == "" {
		return nil
	}
	if rep.Audit == nil {
		return fmt.Errorf("-audit-out: no audit available for this analysis mode (vague -eps solves are not audited)")
	}
	if err := rep.Audit.WriteFile(o.auditOut); err != nil {
		return fmt.Errorf("writing audit: %w", err)
	}
	fmt.Fprintf(w, "solve audit written to %s\n", o.auditOut)
	return nil
}

// checkSolveHealth is the post-run health gate: an unconverged solve or a
// constraint violation above -feastol always earns a loud stderr warning,
// and fails the run under -strict.
func checkSolveHealth(o options, rep *core.Report) error {
	st := rep.Solution.Stats
	tol := o.feasTol
	if tol <= 0 {
		tol = 1e-6
	}
	var problems []string
	if !st.Converged {
		problems = append(problems, "solver did not converge")
	}
	if st.MaxViolation > tol {
		problems = append(problems, fmt.Sprintf("max constraint violation %.3e exceeds tolerance %.1e", st.MaxViolation, tol))
	}
	if len(problems) == 0 {
		return nil
	}
	msg := strings.Join(problems, "; ")
	if o.strict {
		return fmt.Errorf("solve health check failed: %s", msg)
	}
	fmt.Fprintf(os.Stderr, "pmaxent: WARNING: %s (rerun with -strict to fail, -audit-out for diagnosis)\n", msg)
	return nil
}

func writeFile(path string, write func(io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func parseAlgorithm(s string) (maxent.Algorithm, error) {
	switch strings.ToLower(s) {
	case "lbfgs", "":
		return maxent.LBFGS, nil
	case "gis":
		return maxent.GIS, nil
	case "iis":
		return maxent.IIS, nil
	case "steepest":
		return maxent.SteepestDescent, nil
	case "newton":
		return maxent.Newton, nil
	default:
		return 0, fmt.Errorf("unknown algorithm %q (want lbfgs, gis, iis, steepest or newton)", s)
	}
}

func parseSizes(s string) ([]int, error) {
	var out []int
	for _, part := range splitNonEmpty(s) {
		v, err := strconv.Atoi(part)
		if err != nil {
			return nil, fmt.Errorf("bad size %q: %w", part, err)
		}
		out = append(out, v)
	}
	return out, nil
}

func splitNonEmpty(s string) []string {
	var out []string
	for _, p := range strings.Split(s, ",") {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}

func printReport(w io.Writer, schema *dataset.Schema, records int, rep *core.Report, top int) {
	fmt.Fprintf(w, "Privacy-MaxEnt report\n")
	fmt.Fprintf(w, "  records:               %d\n", records)
	fmt.Fprintf(w, "  knowledge bound:       Top-(K+=%d, K-=%d) association rules\n", rep.Bound.KPos, rep.Bound.KNeg)
	fmt.Fprintf(w, "  knowledge applied:     %d constraints\n", len(rep.Knowledge))
	st := rep.Solution.Stats
	fmt.Fprintf(w, "  solver:                %s\n", st.String())
	fmt.Fprintf(w, "  presolve:              %d variables fixed, %d solved numerically\n", st.FixedVariables, st.ActiveVariables)
	fmt.Fprintf(w, "  irrelevant buckets:    %d (closed-form, Sec. 5.5)\n", st.IrrelevantBuckets)
	if st.ReusedComponents > 0 || st.DirtyComponents > 0 {
		fmt.Fprintf(w, "  delta:                 %d components reused from baseline, %d re-solved\n", st.ReusedComponents, st.DirtyComponents)
	}
	if st.Workers > 1 || st.KernelWorkers > 1 {
		fmt.Fprintf(w, "  parallelism:           %d workers over %d components, %d kernel shards\n", st.Workers, st.Components, st.KernelWorkers)
	}
	if len(rep.Timings) > 0 {
		fmt.Fprintf(w, "  stage timings:         %s (total %v)\n", rep.Timings, rep.Timings.Total().Round(1000))
	}
	fmt.Fprintf(w, "\nPrivacy under this bound:\n")
	if rep.EstimationAccuracy >= 0 {
		fmt.Fprintf(w, "  estimation accuracy:   %.6g (weighted KL truth vs estimate; lower = less privacy)\n", rep.EstimationAccuracy)
	} else {
		fmt.Fprintf(w, "  estimation accuracy:   n/a (no original data)\n")
	}
	fmt.Fprintf(w, "  max disclosure:        %.4f\n", rep.MaxDisclosure)
	fmt.Fprintf(w, "  posterior entropy:     %.4f bits\n", rep.PosteriorEntropy)

	// Riskiest QI tuples by best-guess confidence.
	u := rep.Posterior.Universe()
	type risk struct {
		qid  int
		sa   int
		conf float64
	}
	risks := make([]risk, 0, u.Len())
	for qid := 0; qid < u.Len(); qid++ {
		best, arg := 0.0, 0
		for s := 0; s < rep.Posterior.NumSA(); s++ {
			if p := rep.Posterior.P(qid, s); p > best {
				best, arg = p, s
			}
		}
		risks = append(risks, risk{qid: qid, sa: arg, conf: best})
	}
	sort.Slice(risks, func(i, j int) bool {
		if risks[i].conf != risks[j].conf {
			return risks[i].conf > risks[j].conf
		}
		return risks[i].qid < risks[j].qid
	})
	if top > len(risks) {
		top = len(risks)
	}
	fmt.Fprintf(w, "\nRiskiest QI tuples (adversary's best guess):\n")
	sa := schema.SA()
	for _, r := range risks[:top] {
		fmt.Fprintf(w, "  %-40s => %-20s %.3f\n", u.Display(r.qid), sa.Value(r.sa), r.conf)
	}
	if len(rep.Knowledge) > 0 {
		limit := len(rep.Knowledge)
		if limit > 5 {
			limit = 5
		}
		fmt.Fprintf(w, "\nStrongest knowledge applied (first %d):\n", limit)
		for _, k := range rep.Knowledge[:limit] {
			fmt.Fprintf(w, "  P(%s | %s) = %.3f\n", sa.Value(k.SA), describeCondition(schema, k), k.P)
		}
	}

	// Shadow prices: the knowledge rows with the largest |λ| shape the
	// posterior the most.
	var influential []maxent.ConstraintDual
	for _, dd := range rep.Solution.Duals {
		if dd.Kind == constraint.Knowledge {
			influential = append(influential, dd)
		}
	}
	if len(influential) > 0 {
		sort.Slice(influential, func(i, j int) bool {
			return abs(influential[i].Lambda) > abs(influential[j].Lambda)
		})
		limit := len(influential)
		if limit > 3 {
			limit = 3
		}
		fmt.Fprintf(w, "\nMost influential knowledge (by |dual multiplier|):\n")
		for _, dd := range influential[:limit] {
			fmt.Fprintf(w, "  %-60s λ=%+.3f\n", dd.Label, dd.Lambda)
		}
	}
}

func abs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}

func describeCondition(schema *dataset.Schema, k constraint.DistributionKnowledge) string {
	parts := make([]string, len(k.Attrs))
	for i, a := range k.Attrs {
		parts[i] = fmt.Sprintf("%s=%s", schema.Attr(a).Name, schema.Attr(a).Value(k.Values[i]))
	}
	return strings.Join(parts, ", ")
}
