package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"privacymaxent/internal/audit"
	"privacymaxent/internal/dataset"
	"privacymaxent/internal/maxent"
)

func TestParseAlgorithm(t *testing.T) {
	cases := map[string]maxent.Algorithm{
		"lbfgs": maxent.LBFGS, "": maxent.LBFGS, "GIS": maxent.GIS,
		"iis": maxent.IIS, "steepest": maxent.SteepestDescent, "Newton": maxent.Newton,
	}
	for in, want := range cases {
		got, err := parseAlgorithm(in)
		if err != nil || got != want {
			t.Errorf("parseAlgorithm(%q) = %v, %v; want %v", in, got, err, want)
		}
	}
	if _, err := parseAlgorithm("simplex"); err == nil {
		t.Fatal("expected error for unknown algorithm")
	}
}

func TestParseSizes(t *testing.T) {
	got, err := parseSizes("1, 2,3")
	if err != nil || len(got) != 3 || got[2] != 3 {
		t.Fatalf("parseSizes = %v, %v", got, err)
	}
	if out, err := parseSizes(""); err != nil || out != nil {
		t.Fatalf("empty sizes = %v, %v", out, err)
	}
	if _, err := parseSizes("1,x"); err == nil {
		t.Fatal("expected error for non-numeric size")
	}
}

func TestSplitNonEmpty(t *testing.T) {
	got := splitNonEmpty(" a, ,b ,")
	if len(got) != 2 || got[0] != "a" || got[1] != "b" {
		t.Fatalf("splitNonEmpty = %v", got)
	}
}

func TestRunDemo(t *testing.T) {
	var buf bytes.Buffer
	o := options{demo: true, diversity: 5, minSupport: 3, kPos: 1, kNeg: 2, top: 5, algorithm: "lbfgs"}
	if err := run(&buf, o); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"Privacy-MaxEnt report", "Top-(K+=1, K-=2)", "Riskiest QI tuples"} {
		if !strings.Contains(out, want) {
			t.Fatalf("report missing %q:\n%s", want, out)
		}
	}
}

func writePaperCSV(t *testing.T) string {
	t.Helper()
	dir := t.TempDir()
	path := filepath.Join(dir, "data.csv")
	var sb strings.Builder
	if err := dataset.WriteCSV(&sb, dataset.PaperExample()); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, []byte(sb.String()), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunCSVFile(t *testing.T) {
	path := writePaperCSV(t)
	var buf bytes.Buffer
	o := options{
		input: path, saName: "Disease", idNames: "Name",
		diversity: 3, kPos: 1, kNeg: 1, minSupport: 1,
		sizes: "1", algorithm: "gis", top: 3,
	}
	if err := run(&buf, o); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "knowledge applied:     2 constraints") {
		t.Fatalf("unexpected report:\n%s", buf.String())
	}
}

func TestRunErrors(t *testing.T) {
	path := writePaperCSV(t)
	cases := []options{
		{},                            // no mode selected
		{input: path},                 // -input without -sa
		{input: path, saName: "Nope"}, // missing SA column
		{algorithm: "simplex"},        // bad algorithm
		{published: "/no/such/file"},  // bad published path
		{input: "/no/such.csv", saName: "Disease"}, // bad csv path
	}
	for i, o := range cases {
		if o.diversity == 0 {
			o.diversity = 3
		}
		if o.minSupport == 0 {
			o.minSupport = 1
		}
		var buf bytes.Buffer
		if err := run(&buf, o); err == nil {
			t.Errorf("case %d: expected error", i)
		}
	}
}

// TestPublishAndReanalyze is the full round trip: publish a CSV with
// exported knowledge, then re-analyze the publication without the
// original data.
func TestPublishAndReanalyze(t *testing.T) {
	path := writePaperCSV(t)
	dir := t.TempDir()
	pubPath := filepath.Join(dir, "published.json")
	kPath := filepath.Join(dir, "knowledge.json")

	var buf bytes.Buffer
	o := options{
		input: path, saName: "Disease", idNames: "Name",
		diversity: 3, kNeg: 2, minSupport: 1,
		publishOut: pubPath, exportKnowledge: kPath, top: 3,
	}
	if err := run(&buf, o); err != nil {
		t.Fatal(err)
	}
	for _, p := range []string{pubPath, kPath} {
		if _, err := os.Stat(p); err != nil {
			t.Fatalf("expected output file %s: %v", p, err)
		}
	}

	buf.Reset()
	o2 := options{published: pubPath, knowledgeFile: kPath, top: 3}
	if err := run(&buf, o2); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "knowledge applied:     2 constraints") {
		t.Fatalf("reanalysis lost knowledge:\n%s", out)
	}
	if !strings.Contains(out, "estimation accuracy:   n/a") {
		t.Fatalf("reanalysis should have no ground truth:\n%s", out)
	}
	// And without knowledge.
	buf.Reset()
	if err := run(&buf, options{published: pubPath, top: 3}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "knowledge applied:     0 constraints") {
		t.Fatalf("unexpected report:\n%s", buf.String())
	}
}

// TestTraceAndMetricsOut: -trace-out writes a JSON-lines span trace
// covering every pipeline stage, -metrics-out a Prometheus-style snapshot
// with the solver series, and the report gains a stage-timings line.
func TestTraceAndMetricsOut(t *testing.T) {
	dir := t.TempDir()
	tracePath := filepath.Join(dir, "trace.jsonl")
	metricsPath := filepath.Join(dir, "metrics.prom")
	var buf bytes.Buffer
	o := options{
		demo: true, diversity: 5, minSupport: 3, kPos: 2, kNeg: 2, top: 3,
		traceOut: tracePath, metricsOut: metricsPath,
	}
	if err := run(&buf, o); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "stage timings:") {
		t.Fatalf("report missing stage timings:\n%s", buf.String())
	}

	tf, err := os.Open(tracePath)
	if err != nil {
		t.Fatal(err)
	}
	defer tf.Close()
	spans := map[string]int{}
	sc := bufio.NewScanner(tf)
	for sc.Scan() {
		var ev struct {
			Name  string  `json:"name"`
			DurUS float64 `json:"dur_us"`
		}
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatalf("bad trace line %q: %v", sc.Text(), err)
		}
		spans[ev.Name]++
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{
		"core.bucketize", "core.mine_rules", "core.select_rules",
		"core.formulate", "maxent.solve", "maxent.presolve", "core.score",
	} {
		if spans[name] == 0 {
			t.Errorf("trace missing %q spans (got %v)", name, spans)
		}
	}

	prom, err := os.ReadFile(metricsPath)
	if err != nil {
		t.Fatal(err)
	}
	for _, series := range []string{
		"pmaxent_solve_iterations", "pmaxent_solve_evaluations",
		"pmaxent_solve_duration_seconds", "pmaxent_decompose_buckets_total",
		"pmaxent_decompose_buckets_closed_form_total",
	} {
		if !strings.Contains(string(prom), series) {
			t.Errorf("metrics snapshot missing %q", series)
		}
	}
}

// TestAuditOutAndSolveLog: -audit-out writes the full solve audit (family
// residual breakdown, labeled top violations, binding knowledge by |λ|,
// trajectory ending at Stats.Iterations) and -solve-log a JSONL stream of
// solve lifecycle events.
func TestAuditOutAndSolveLog(t *testing.T) {
	dir := t.TempDir()
	auditPath := filepath.Join(dir, "audit.json")
	logPath := filepath.Join(dir, "events.jsonl")
	var buf bytes.Buffer
	// kPos=5 reaches past the confidence-1.0 rules (which presolve fixes
	// away) to a fractional rule that must survive to the numerical solve
	// and bind.
	o := options{
		demo: true, diversity: 5, minSupport: 3, kPos: 5, kNeg: 2, top: 3,
		auditOut: auditPath, solveLog: logPath,
	}
	if err := run(&buf, o); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "solve audit written to") {
		t.Fatalf("report does not mention the audit:\n%s", buf.String())
	}

	a, err := audit.ReadFile(auditPath)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Families) == 0 {
		t.Fatal("audit has no family breakdown")
	}
	fams := map[string]bool{}
	for _, f := range a.Families {
		fams[f.Family] = true
	}
	for _, want := range []string{"QI-invariant", "SA-invariant", "knowledge"} {
		if !fams[want] {
			t.Errorf("audit missing family %q (got %v)", want, fams)
		}
	}
	if len(a.TopViolations) == 0 || a.TopViolations[0].Label == "" {
		t.Fatalf("audit top violations unlabeled: %+v", a.TopViolations)
	}
	if len(a.BindingKnowledge) == 0 {
		t.Fatal("audit identifies no binding knowledge rule")
	}
	if len(a.Trajectory) == 0 {
		t.Fatal("audit has no trajectory")
	}
	if last := a.Trajectory[len(a.Trajectory)-1]; last.Index != a.Iterations {
		t.Fatalf("final trajectory index %d != iterations %d", last.Index, a.Iterations)
	}

	lf, err := os.Open(logPath)
	if err != nil {
		t.Fatal(err)
	}
	defer lf.Close()
	msgs := map[string]int{}
	sc := bufio.NewScanner(lf)
	for sc.Scan() {
		var ev struct {
			Msg  string `json:"msg"`
			Time string `json:"time"`
		}
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatalf("bad solve-log line %q: %v", sc.Text(), err)
		}
		if ev.Time == "" {
			t.Fatalf("solve-log line missing timestamp: %q", sc.Text())
		}
		msgs[ev.Msg]++
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"solve.start", "presolve", "solve.done"} {
		if msgs[want] == 0 {
			t.Errorf("solve log missing %q events (got %v)", want, msgs)
		}
	}
}

// TestStrictMode: the health gate fails a run whose solution violates the
// feasibility tolerance only under -strict.
func TestStrictMode(t *testing.T) {
	base := options{demo: true, diversity: 5, minSupport: 3, kPos: 2, kNeg: 2, top: 3}

	// An impossible tolerance makes any numerical solve "violating".
	o := base
	o.feasTol = 1e-300
	var buf bytes.Buffer
	if err := run(&buf, o); err != nil {
		t.Fatalf("without -strict a violation must only warn: %v", err)
	}

	o.strict = true
	buf.Reset()
	err := run(&buf, o)
	if err == nil {
		t.Fatal("-strict must fail on a violating solve")
	}
	if !strings.Contains(err.Error(), "health check failed") {
		t.Fatalf("unexpected strict error: %v", err)
	}

	// A healthy solve passes strict.
	o = base
	o.strict = true
	buf.Reset()
	if err := run(&buf, o); err != nil {
		t.Fatalf("healthy solve failed strict mode: %v", err)
	}
}

// TestAuditOutVagueModeRejected: inequality (-eps) solves carry no
// equality audit, so combining them with -audit-out is an error.
func TestAuditOutVagueModeRejected(t *testing.T) {
	path := writePaperCSV(t)
	dir := t.TempDir()
	pubPath := filepath.Join(dir, "published.json")
	kPath := filepath.Join(dir, "knowledge.json")
	var buf bytes.Buffer
	o := options{
		input: path, saName: "Disease", idNames: "Name",
		diversity: 3, kNeg: 2, minSupport: 1,
		publishOut: pubPath, exportKnowledge: kPath, top: 3,
	}
	if err := run(&buf, o); err != nil {
		t.Fatal(err)
	}
	buf.Reset()
	o2 := options{published: pubPath, knowledgeFile: kPath, eps: 0.2, top: 3,
		auditOut: filepath.Join(dir, "audit.json")}
	err := run(&buf, o2)
	if err == nil || !strings.Contains(err.Error(), "not audited") {
		t.Fatalf("vague mode with -audit-out should be rejected, got %v", err)
	}
}

// TestPublishedVagueMode applies the -eps flag: knowledge enters as
// ε-boxes rather than equalities.
func TestPublishedVagueMode(t *testing.T) {
	path := writePaperCSV(t)
	dir := t.TempDir()
	pubPath := filepath.Join(dir, "published.json")
	kPath := filepath.Join(dir, "knowledge.json")
	var buf bytes.Buffer
	o := options{
		input: path, saName: "Disease", idNames: "Name",
		diversity: 3, kNeg: 2, minSupport: 1,
		publishOut: pubPath, exportKnowledge: kPath, top: 3,
	}
	if err := run(&buf, o); err != nil {
		t.Fatal(err)
	}
	buf.Reset()
	if err := run(&buf, options{published: pubPath, knowledgeFile: kPath, eps: 0.2, top: 3}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "knowledge applied:     2 constraints") {
		t.Fatalf("vague reanalysis report:\n%s", buf.String())
	}
}
