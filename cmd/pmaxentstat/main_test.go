package main

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"privacymaxent/internal/history"
)

const sampleMetrics = `# TYPE pmaxentd_build_info gauge
pmaxentd_build_info{commit="abc",version="(devel)"} 1
# TYPE pmaxentd_requests_total counter
pmaxentd_requests_total 42
# TYPE pmaxentd_inflight gauge
pmaxentd_inflight 2
# TYPE pmaxentd_inflight_limit gauge
pmaxentd_inflight_limit 4
# TYPE pmaxentd_queue_depth gauge
pmaxentd_queue_depth 1
# TYPE pmaxentd_queue_limit gauge
pmaxentd_queue_limit 16
# TYPE pmaxentd_cache_hits_total counter
pmaxentd_cache_hits_total 30
# TYPE pmaxentd_cache_misses_total counter
pmaxentd_cache_misses_total 12
# TYPE pmaxentd_cache_evictions_total counter
pmaxentd_cache_evictions_total 3
# TYPE pmaxentd_sse_clients gauge
pmaxentd_sse_clients 1
# TYPE pmaxentd_request_duration_seconds histogram
pmaxentd_request_duration_seconds_bucket{le="0.001"} 5
pmaxentd_request_duration_seconds_sum 1.5
pmaxentd_request_duration_seconds_count 42
`

func TestParseMetrics(t *testing.T) {
	m := parseMetrics(sampleMetrics)
	if m["pmaxentd_requests_total"] != 42 {
		t.Errorf("requests_total = %v, want 42", m["pmaxentd_requests_total"])
	}
	if m["pmaxentd_inflight"] != 2 {
		t.Errorf("inflight = %v, want 2", m["pmaxentd_inflight"])
	}
	if _, ok := m["pmaxentd_build_info{commit=\"abc\",version=\"(devel)\"}"]; ok {
		t.Error("labeled series should be skipped")
	}
	// Histogram suffixes are plain name-value lines and harmlessly parse.
	if m["pmaxentd_request_duration_seconds_count"] != 42 {
		t.Errorf("histogram count = %v", m["pmaxentd_request_duration_seconds_count"])
	}
}

func TestRender(t *testing.T) {
	snap := &snapshot{
		Metrics: parseMetrics(sampleMetrics),
		Solves: []solveRow{
			{ID: "aaa-1", RequestID: "req-done", State: "done", Iterations: 10, GradNorm: 1e-9, ElapsedMS: 120},
			{ID: "bbb-2", RequestID: "req-live", State: "running", Iterations: 1204, GradNorm: 3.2e-5,
				ComponentsDone: 3, ComponentsTotal: 5, ElapsedMS: 2410},
		},
	}
	out := render(snap)
	if !strings.Contains(out, "requests 42") {
		t.Errorf("summary line missing requests: %q", out)
	}
	if !strings.Contains(out, "inflight 2/4") {
		t.Errorf("summary line missing inflight: %q", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 4 { // summary, header, two solves
		t.Fatalf("got %d lines, want 4:\n%s", len(lines), out)
	}
	// Live solves render before finished ones regardless of input order.
	if !strings.Contains(lines[2], "bbb-2") || !strings.Contains(lines[2], "running") {
		t.Errorf("first solve row should be the running solve: %q", lines[2])
	}
	if !strings.Contains(lines[2], "3/5") {
		t.Errorf("running solve row should show component progress: %q", lines[2])
	}
	if !strings.Contains(lines[3], "aaa-1") {
		t.Errorf("second solve row should be the finished solve: %q", lines[3])
	}
}

func TestRenderEmpty(t *testing.T) {
	out := render(&snapshot{Metrics: map[string]float64{}})
	if !strings.Contains(out, "no solves") {
		t.Errorf("empty snapshot: %q", out)
	}
}

func TestClip(t *testing.T) {
	if got := clip("abcdef", 4); got != "abc…" {
		t.Errorf("clip = %q", got)
	}
	if got := clip("ab", 4); got != "ab" {
		t.Errorf("clip = %q", got)
	}
}

func TestRenderHistoryOffline(t *testing.T) {
	dir := t.TempDir()
	st, err := history.Open(history.StoreConfig{Dir: dir, Fsync: history.FsyncPolicy{Always: true}})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		st.Append(history.Record{
			Schema:      history.RecordSchema,
			SolveID:     fmt.Sprintf("abcdef123456-%d", i),
			RequestID:   fmt.Sprintf("req-%d", i),
			Digest:      "abcdef1234567890",
			Outcome:     "ok",
			StartUnixNS: int64(i) * 1e9,
			ElapsedMS:   12.5,
			StagesMS:    map[string]float64{"solve": 10},
			Solver:      &history.SolverSummary{Iterations: 20 + i, Converged: true},
		})
	}
	st.Append(history.Record{
		Schema:    history.RecordSchema,
		SolveID:   "abcdef123456-9",
		RequestID: "req-9",
		Digest:    "abcdef1234567890",
		Outcome:   "error",
		ErrorKind: "deadline",
	})
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	// A crash-torn tail must be reported, not fatal.
	segs, err := filepath.Glob(filepath.Join(dir, "journal-*.jsonl"))
	if err != nil || len(segs) == 0 {
		t.Fatalf("no segments: %v", err)
	}
	f, err := os.OpenFile(segs[len(segs)-1], os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	f.WriteString(`00000000 {"schema":1,"torn`)
	f.Close()

	out, err := renderHistory(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"6 records",
		"1 torn frames skipped",
		"abcdef1234567890",
		"DIGEST",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("offline view missing %q:\n%s", want, out)
		}
	}
	// One error among six records shows in the ERR column; the digest row
	// carries the counts.
	var row string
	for _, line := range strings.Split(out, "\n") {
		if strings.HasPrefix(line, "abcdef1234567890") {
			row = line
		}
	}
	if row == "" {
		t.Fatalf("no digest row:\n%s", out)
	}
	fields := strings.Fields(row)
	if len(fields) < 4 || fields[1] != "6" || fields[2] != "1" {
		t.Fatalf("digest row counts wrong (want 6 solves, 1 error): %q", row)
	}
}

func TestRenderHistoryMissingDir(t *testing.T) {
	out, err := renderHistory(filepath.Join(t.TempDir(), "nope"))
	if err != nil {
		t.Fatalf("missing journal dir should render as empty, got %v", err)
	}
	if !strings.Contains(out, "no solves") {
		t.Fatalf("want \"no solves\", got:\n%s", out)
	}
}
