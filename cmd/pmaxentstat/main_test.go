package main

import (
	"strings"
	"testing"
)

const sampleMetrics = `# TYPE pmaxentd_build_info gauge
pmaxentd_build_info{commit="abc",version="(devel)"} 1
# TYPE pmaxentd_requests_total counter
pmaxentd_requests_total 42
# TYPE pmaxentd_inflight gauge
pmaxentd_inflight 2
# TYPE pmaxentd_inflight_limit gauge
pmaxentd_inflight_limit 4
# TYPE pmaxentd_queue_depth gauge
pmaxentd_queue_depth 1
# TYPE pmaxentd_queue_limit gauge
pmaxentd_queue_limit 16
# TYPE pmaxentd_cache_hits_total counter
pmaxentd_cache_hits_total 30
# TYPE pmaxentd_cache_misses_total counter
pmaxentd_cache_misses_total 12
# TYPE pmaxentd_cache_evictions_total counter
pmaxentd_cache_evictions_total 3
# TYPE pmaxentd_sse_clients gauge
pmaxentd_sse_clients 1
# TYPE pmaxentd_request_duration_seconds histogram
pmaxentd_request_duration_seconds_bucket{le="0.001"} 5
pmaxentd_request_duration_seconds_sum 1.5
pmaxentd_request_duration_seconds_count 42
`

func TestParseMetrics(t *testing.T) {
	m := parseMetrics(sampleMetrics)
	if m["pmaxentd_requests_total"] != 42 {
		t.Errorf("requests_total = %v, want 42", m["pmaxentd_requests_total"])
	}
	if m["pmaxentd_inflight"] != 2 {
		t.Errorf("inflight = %v, want 2", m["pmaxentd_inflight"])
	}
	if _, ok := m["pmaxentd_build_info{commit=\"abc\",version=\"(devel)\"}"]; ok {
		t.Error("labeled series should be skipped")
	}
	// Histogram suffixes are plain name-value lines and harmlessly parse.
	if m["pmaxentd_request_duration_seconds_count"] != 42 {
		t.Errorf("histogram count = %v", m["pmaxentd_request_duration_seconds_count"])
	}
}

func TestRender(t *testing.T) {
	snap := &snapshot{
		Metrics: parseMetrics(sampleMetrics),
		Solves: []solveRow{
			{ID: "aaa-1", RequestID: "req-done", State: "done", Iterations: 10, GradNorm: 1e-9, ElapsedMS: 120},
			{ID: "bbb-2", RequestID: "req-live", State: "running", Iterations: 1204, GradNorm: 3.2e-5,
				ComponentsDone: 3, ComponentsTotal: 5, ElapsedMS: 2410},
		},
	}
	out := render(snap)
	if !strings.Contains(out, "requests 42") {
		t.Errorf("summary line missing requests: %q", out)
	}
	if !strings.Contains(out, "inflight 2/4") {
		t.Errorf("summary line missing inflight: %q", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 4 { // summary, header, two solves
		t.Fatalf("got %d lines, want 4:\n%s", len(lines), out)
	}
	// Live solves render before finished ones regardless of input order.
	if !strings.Contains(lines[2], "bbb-2") || !strings.Contains(lines[2], "running") {
		t.Errorf("first solve row should be the running solve: %q", lines[2])
	}
	if !strings.Contains(lines[2], "3/5") {
		t.Errorf("running solve row should show component progress: %q", lines[2])
	}
	if !strings.Contains(lines[3], "aaa-1") {
		t.Errorf("second solve row should be the finished solve: %q", lines[3])
	}
}

func TestRenderEmpty(t *testing.T) {
	out := render(&snapshot{Metrics: map[string]float64{}})
	if !strings.Contains(out, "no solves") {
		t.Errorf("empty snapshot: %q", out)
	}
}

func TestClip(t *testing.T) {
	if got := clip("abcdef", 4); got != "abc…" {
		t.Errorf("clip = %q", got)
	}
	if got := clip("ab", 4); got != "ab" {
		t.Errorf("clip = %q", got)
	}
}
