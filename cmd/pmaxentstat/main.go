// Command pmaxentstat tails a running pmaxentd: it scrapes the daemon's
// /debug/solves table and /metrics exposition on an interval and renders
// a live one-line-per-solve view, top-style, on the terminal.
//
//	pmaxentstat [-addr http://localhost:8080] [-interval 1s] [-once]
//
// Each refresh prints a daemon summary line (requests, in-flight vs
// limit, queue depth, cache hit/miss/evictions, live SSE clients) and
// then one line per solve, live solves first:
//
//	ID            STATE    REQUEST           ITER     GRAD      COMP   DIM         ELAPSED
//	0b6e3d…-7     running  9f0c4a1be2d344a1  1204     3.2e-05   3/5    4/982-49b   2.41s
//
// The DIM column appears once a solve reports its structural-presolve
// stats: reduced dual rows over full variables, with "-Nb" counting
// buckets solved in closed form.
//
// -once prints a single snapshot and exits — the scriptable mode CI and
// quick health checks use.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"sort"
	"strconv"
	"strings"
	"time"
)

func main() {
	var (
		addr     = flag.String("addr", "http://localhost:8080", "base URL of the pmaxentd to watch")
		interval = flag.Duration("interval", time.Second, "refresh interval")
		once     = flag.Bool("once", false, "print one snapshot and exit")
	)
	flag.Parse()

	client := &http.Client{Timeout: 10 * time.Second}
	for {
		snap, err := scrape(client, strings.TrimRight(*addr, "/"))
		if err != nil {
			fmt.Fprintln(os.Stderr, "pmaxentstat:", err)
			if *once {
				os.Exit(1)
			}
		} else {
			if !*once {
				// Clear the screen between refreshes (ANSI; harmless when
				// redirected).
				fmt.Print("\x1b[2J\x1b[H")
			}
			fmt.Print(render(snap))
		}
		if *once {
			return
		}
		time.Sleep(*interval)
	}
}

// solveRow mirrors the wire shape of one GET /debug/solves entry (kept
// local so the command builds without importing internal packages'
// transitive solver dependencies — the wire contract is JSON).
type solveRow struct {
	ID              string  `json:"id"`
	RequestID       string  `json:"request_id"`
	State           string  `json:"state"`
	Variables       int64   `json:"variables"`
	Iterations      int64   `json:"iterations"`
	GradNorm        float64 `json:"grad_norm"`
	ComponentsDone  int64   `json:"components_done"`
	ComponentsTotal int64   `json:"components_total"`
	ReducedDualDim  int64   `json:"reduced_dual_dim"`
	EliminatedBkts  int64   `json:"eliminated_buckets"`
	QueueWaitMS     float64 `json:"queue_wait_ms"`
	ElapsedMS       float64 `json:"elapsed_ms"`
}

// snapshot is one scrape of the daemon.
type snapshot struct {
	Solves  []solveRow
	Metrics map[string]float64
}

// scrape fetches /debug/solves and /metrics.
func scrape(client *http.Client, base string) (*snapshot, error) {
	var body struct {
		Solves []solveRow `json:"solves"`
	}
	if err := getJSON(client, base+"/debug/solves", &body); err != nil {
		return nil, err
	}
	resp, err := client.Get(base + "/metrics")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	if err != nil {
		return nil, err
	}
	return &snapshot{Solves: body.Solves, Metrics: parseMetrics(string(raw))}, nil
}

func getJSON(client *http.Client, url string, dst any) error {
	resp, err := client.Get(url)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("%s: %s", url, resp.Status)
	}
	return json.NewDecoder(resp.Body).Decode(dst)
}

// parseMetrics reads the scalar samples out of a Prometheus text
// exposition: "name value" lines, skipping comments and labeled series
// (histogram buckets, build info) — the summary line only needs the
// plain counters and gauges.
func parseMetrics(text string) map[string]float64 {
	out := make(map[string]float64)
	for _, line := range strings.Split(text, "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		name, valueStr, ok := strings.Cut(line, " ")
		if !ok || strings.ContainsAny(name, "{") {
			continue
		}
		v, err := strconv.ParseFloat(valueStr, 64)
		if err != nil {
			continue
		}
		out[name] = v
	}
	return out
}

// render formats one snapshot: a summary line, a header, and one line
// per solve (live first, as the daemon orders them).
func render(s *snapshot) string {
	var b strings.Builder
	m := s.Metrics
	sortLiveFirst(s.Solves)
	fmt.Fprintf(&b, "requests %.0f  inflight %.0f/%.0f  queued %.0f/%.0f  cache %.0f/%.0f hit/miss (%.0f evicted)  sse %.0f\n",
		m["pmaxentd_requests_total"],
		m["pmaxentd_inflight"], m["pmaxentd_inflight_limit"],
		m["pmaxentd_queue_depth"], m["pmaxentd_queue_limit"],
		m["pmaxentd_cache_hits_total"], m["pmaxentd_cache_misses_total"],
		m["pmaxentd_cache_evictions_total"],
		m["pmaxentd_sse_clients"])
	if len(s.Solves) == 0 {
		b.WriteString("no solves\n")
		return b.String()
	}
	fmt.Fprintf(&b, "%-22s %-8s %-18s %8s %10s %7s %11s %9s\n",
		"ID", "STATE", "REQUEST", "ITER", "GRAD", "COMP", "DIM", "ELAPSED")
	for _, r := range s.Solves {
		comp := "-"
		if r.ComponentsTotal > 0 {
			comp = fmt.Sprintf("%d/%d", r.ComponentsDone, r.ComponentsTotal)
		}
		// DIM shows the structural presolve's work: reduced dual rows
		// over full variables, with "-Nb" for closed-form buckets.
		dim := "-"
		if r.ReducedDualDim > 0 || r.EliminatedBkts > 0 {
			dim = fmt.Sprintf("%d/%d", r.ReducedDualDim, r.Variables)
			if r.EliminatedBkts > 0 {
				dim += fmt.Sprintf("-%db", r.EliminatedBkts)
			}
		}
		fmt.Fprintf(&b, "%-22s %-8s %-18s %8d %10.2e %7s %11s %8.2fs\n",
			clip(r.ID, 22), r.State, clip(r.RequestID, 18),
			r.Iterations, r.GradNorm, comp, dim, r.ElapsedMS/1000)
	}
	return b.String()
}

// clip truncates s to n runes with a trailing ellipsis.
func clip(s string, n int) string {
	if len(s) <= n {
		return s
	}
	if n <= 1 {
		return s[:n]
	}
	return s[:n-1] + "…"
}

// sortLiveFirst orders rows live-states first, oldest first within each
// group — used when composing snapshots from multiple scrapes.
func sortLiveFirst(rows []solveRow) {
	rank := func(state string) int {
		switch state {
		case "running":
			return 0
		case "queued":
			return 1
		default:
			return 2
		}
	}
	sort.SliceStable(rows, func(i, j int) bool {
		return rank(rows[i].State) < rank(rows[j].State)
	})
}
