// Command pmaxentstat tails a running pmaxentd: it scrapes the daemon's
// /debug/solves table and /metrics exposition on an interval and renders
// a live one-line-per-solve view, top-style, on the terminal.
//
//	pmaxentstat [-addr http://localhost:8080] [-interval 1s] [-once]
//	pmaxentstat -history DIR
//
// Each refresh prints a daemon summary line (requests, in-flight vs
// limit, queue depth, cache hit/miss/evictions, live SSE clients) and
// then one line per solve, live solves first:
//
//	ID            STATE    REQUEST           SCHEME    ITER     GRAD      COMP   DIM         DELTA   ELAPSED
//	0b6e3d…-7     running  9f0c4a1be2d344a1  mondrian  1204     3.2e-05   3/5    4/982-49b   2r/1d   2.41s
//
// The DIM column appears once a solve reports its structural-presolve
// stats: reduced dual rows over full variables, with "-Nb" counting
// buckets solved in closed form. The DELTA column appears for
// incremental solves (pmaxentd -delta): components reused verbatim from
// the publication's chained baseline over components re-solved.
//
// -once prints a single snapshot and exits — the scriptable mode CI and
// quick health checks use.
//
// -history DIR switches to offline mode: instead of scraping a live
// daemon, the solve-history journal under DIR is scanned (the same files
// pmaxentd -history-dir writes) and summarized per publication digest —
// solve counts, error/unconverged totals, p50/p95 latency and iteration
// windows, and any convergence regressions the detector would flag.
// Works on a journal copied off a dead host; no daemon required.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"sort"
	"strconv"
	"strings"
	"time"

	"privacymaxent/internal/history"
)

func main() {
	var (
		addr       = flag.String("addr", "http://localhost:8080", "base URL of the pmaxentd to watch")
		interval   = flag.Duration("interval", time.Second, "refresh interval")
		once       = flag.Bool("once", false, "print one snapshot and exit")
		historyDir = flag.String("history", "", "offline mode: summarize the solve-history journal in this directory and exit")
	)
	flag.Parse()

	if *historyDir != "" {
		out, err := renderHistory(*historyDir)
		if err != nil {
			fmt.Fprintln(os.Stderr, "pmaxentstat:", err)
			os.Exit(1)
		}
		fmt.Print(out)
		return
	}

	client := &http.Client{Timeout: 10 * time.Second}
	for {
		snap, err := scrape(client, strings.TrimRight(*addr, "/"))
		if err != nil {
			fmt.Fprintln(os.Stderr, "pmaxentstat:", err)
			if *once {
				os.Exit(1)
			}
		} else {
			if !*once {
				// Clear the screen between refreshes (ANSI; harmless when
				// redirected).
				fmt.Print("\x1b[2J\x1b[H")
			}
			fmt.Print(render(snap))
		}
		if *once {
			return
		}
		time.Sleep(*interval)
	}
}

// solveRow mirrors the wire shape of one GET /debug/solves entry (kept
// local so the command builds without importing internal packages'
// transitive solver dependencies — the wire contract is JSON).
type solveRow struct {
	ID              string  `json:"id"`
	RequestID       string  `json:"request_id"`
	State           string  `json:"state"`
	Scheme          string  `json:"scheme"`
	Variables       int64   `json:"variables"`
	Iterations      int64   `json:"iterations"`
	GradNorm        float64 `json:"grad_norm"`
	ComponentsDone  int64   `json:"components_done"`
	ComponentsTotal int64   `json:"components_total"`
	ReducedDualDim  int64   `json:"reduced_dual_dim"`
	EliminatedBkts  int64   `json:"eliminated_buckets"`
	ReusedComps     int64   `json:"reused_components"`
	DirtyComps      int64   `json:"dirty_components"`
	QueueWaitMS     float64 `json:"queue_wait_ms"`
	ElapsedMS       float64 `json:"elapsed_ms"`
}

// snapshot is one scrape of the daemon.
type snapshot struct {
	Solves  []solveRow
	Metrics map[string]float64
}

// scrape fetches /debug/solves and /metrics.
func scrape(client *http.Client, base string) (*snapshot, error) {
	var body struct {
		Solves []solveRow `json:"solves"`
	}
	if err := getJSON(client, base+"/debug/solves", &body); err != nil {
		return nil, err
	}
	resp, err := client.Get(base + "/metrics")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	if err != nil {
		return nil, err
	}
	return &snapshot{Solves: body.Solves, Metrics: parseMetrics(string(raw))}, nil
}

func getJSON(client *http.Client, url string, dst any) error {
	resp, err := client.Get(url)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("%s: %s", url, resp.Status)
	}
	return json.NewDecoder(resp.Body).Decode(dst)
}

// parseMetrics reads the scalar samples out of a Prometheus text
// exposition: "name value" lines, skipping comments and labeled series
// (histogram buckets, build info) — the summary line only needs the
// plain counters and gauges.
func parseMetrics(text string) map[string]float64 {
	out := make(map[string]float64)
	for _, line := range strings.Split(text, "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		name, valueStr, ok := strings.Cut(line, " ")
		if !ok || strings.ContainsAny(name, "{") {
			continue
		}
		v, err := strconv.ParseFloat(valueStr, 64)
		if err != nil {
			continue
		}
		out[name] = v
	}
	return out
}

// render formats one snapshot: a summary line, a header, and one line
// per solve (live first, as the daemon orders them).
func render(s *snapshot) string {
	var b strings.Builder
	m := s.Metrics
	sortLiveFirst(s.Solves)
	fmt.Fprintf(&b, "requests %.0f  inflight %.0f/%.0f  queued %.0f/%.0f  cache %.0f/%.0f hit/miss (%.0f evicted)  sse %.0f\n",
		m["pmaxentd_requests_total"],
		m["pmaxentd_inflight"], m["pmaxentd_inflight_limit"],
		m["pmaxentd_queue_depth"], m["pmaxentd_queue_limit"],
		m["pmaxentd_cache_hits_total"], m["pmaxentd_cache_misses_total"],
		m["pmaxentd_cache_evictions_total"],
		m["pmaxentd_sse_clients"])
	if len(s.Solves) == 0 {
		b.WriteString("no solves\n")
		return b.String()
	}
	fmt.Fprintf(&b, "%-22s %-8s %-18s %-10s %8s %10s %7s %11s %7s %9s\n",
		"ID", "STATE", "REQUEST", "SCHEME", "ITER", "GRAD", "COMP", "DIM", "DELTA", "ELAPSED")
	for _, r := range s.Solves {
		// Requests without a scheme field are the classic anatomy default.
		schemeCol := r.Scheme
		if schemeCol == "" {
			schemeCol = "-"
		}
		comp := "-"
		if r.ComponentsTotal > 0 {
			comp = fmt.Sprintf("%d/%d", r.ComponentsDone, r.ComponentsTotal)
		}
		// DIM shows the structural presolve's work: reduced dual rows
		// over full variables, with "-Nb" for closed-form buckets.
		dim := "-"
		if r.ReducedDualDim > 0 || r.EliminatedBkts > 0 {
			dim = fmt.Sprintf("%d/%d", r.ReducedDualDim, r.Variables)
			if r.EliminatedBkts > 0 {
				dim += fmt.Sprintf("-%db", r.EliminatedBkts)
			}
		}
		// DELTA shows an incremental solve's split: components reused
		// verbatim from the chained baseline over components re-solved.
		delta := "-"
		if r.ReusedComps > 0 || r.DirtyComps > 0 {
			delta = fmt.Sprintf("%dr/%dd", r.ReusedComps, r.DirtyComps)
		}
		fmt.Fprintf(&b, "%-22s %-8s %-18s %-10s %8d %10.2e %7s %11s %7s %8.2fs\n",
			clip(r.ID, 22), r.State, clip(r.RequestID, 18), clip(schemeCol, 10),
			r.Iterations, r.GradNorm, comp, dim, delta, r.ElapsedMS/1000)
	}
	return b.String()
}

// clip truncates s to n runes with a trailing ellipsis.
func clip(s string, n int) string {
	if len(s) <= n {
		return s
	}
	if n <= 1 {
		return s[:n]
	}
	return s[:n-1] + "…"
}

// renderHistory is the -history offline mode: scan a solve-history
// journal directory, replay it through the same aggregator the daemon
// runs, and print one line per publication digest plus any regressions
// the detector flags across the replayed window.
func renderHistory(dir string) (string, error) {
	agg := history.NewAggregator(history.RegressionConfig{})
	stats, err := history.Scan(dir, agg.Observe)
	if err != nil {
		return "", err
	}
	var b strings.Builder
	fmt.Fprintf(&b, "journal %s: %d records in %d segments (%d bytes", dir, stats.Records, stats.Segments, stats.Bytes)
	if stats.Torn > 0 {
		fmt.Fprintf(&b, ", %d torn frames skipped", stats.Torn)
	}
	b.WriteString(")\n")
	digests := agg.Digests()
	if len(digests) == 0 {
		b.WriteString("no solves\n")
		return b.String(), nil
	}
	fmt.Fprintf(&b, "%-18s %8s %5s %7s %20s %17s  %s\n",
		"DIGEST", "SOLVES", "ERR", "UNCONV", "SOLVE p50/p95 (ms)", "ITER p50/p95", "LAST")
	for _, d := range digests {
		solve := d.Metrics[history.MetricSolveMS]
		iter := d.Metrics[history.MetricIterations]
		fmt.Fprintf(&b, "%-18s %8d %5d %7d %10.2f/%-9.2f %8.0f/%-8.0f  %s\n",
			clip(d.Digest, 18), d.Records, d.Errors, d.Unconverged,
			recentOrBaseline(solve, 0.50), recentOrBaseline(solve, 0.95),
			recentOrBaseline(iter, 0.50), recentOrBaseline(iter, 0.95),
			d.LastOutcome)
	}
	agg.CheckAll()
	for _, reg := range agg.Regressions() {
		fmt.Fprintf(&b, "REGRESSION %s %s: p50 %.2f -> %.2f (x%.1f over %d baseline samples)\n",
			clip(reg.Digest, 18), reg.Metric, reg.BaselineP50, reg.RecentP50, reg.Ratio, reg.BaselineCount)
	}
	return b.String(), nil
}

// recentOrBaseline prefers the recent window's quantile, falling back to
// the baseline when too few new samples exist (small journals put
// everything in the baseline).
func recentOrBaseline(w history.WindowQuantiles, q float64) float64 {
	pick := func(recent, baseline float64) float64 {
		if w.RecentCount > 0 {
			return recent
		}
		return baseline
	}
	if q >= 0.95 {
		return pick(w.RecentP95, w.BaselineP95)
	}
	return pick(w.RecentP50, w.BaselineP50)
}

// sortLiveFirst orders rows live-states first, oldest first within each
// group — used when composing snapshots from multiple scrapes.
func sortLiveFirst(rows []solveRow) {
	rank := func(state string) int {
		switch state {
		case "running":
			return 0
		case "queued":
			return 1
		default:
			return 2
		}
	}
	sort.SliceStable(rows, func(i, j int) bool {
		return rank(rows[i].State) < rank(rows[j].State)
	})
}
