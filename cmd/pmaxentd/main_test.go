package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"privacymaxent/internal/bucket"
	"privacymaxent/internal/dataset"
)

// TestServeQuantifyAndDrain boots the daemon on an ephemeral port, runs
// a quantify round-trip, then cancels the context (the SIGTERM path) and
// expects a clean drain.
func TestServeQuantifyAndDrain(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	ready := make(chan string, 1)
	done := make(chan error, 1)
	go func() {
		done <- run(ctx, options{
			addr:         "127.0.0.1:0",
			timeout:      30 * time.Second,
			retryAfter:   time.Second,
			drainTimeout: 10 * time.Second,
			cacheSize:    4,
		}, ready)
	}()
	var addr string
	select {
	case addr = <-ready:
	case err := <-done:
		t.Fatalf("daemon exited before listening: %v", err)
	case <-time.After(10 * time.Second):
		t.Fatal("daemon never became ready")
	}
	base := "http://" + addr

	resp, err := http.Get(base + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("readyz = %d", resp.StatusCode)
	}

	d, err := bucket.FromPartition(dataset.PaperExample(), dataset.PaperBuckets())
	if err != nil {
		t.Fatal(err)
	}
	var pub bytes.Buffer
	if err := bucket.WriteJSON(&pub, d); err != nil {
		t.Fatal(err)
	}
	body := fmt.Sprintf(`{"published": %s}`, pub.String())
	qresp, err := http.Post(base+"/v1/quantify", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	raw, err := io.ReadAll(qresp.Body)
	qresp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if qresp.StatusCode != http.StatusOK {
		t.Fatalf("quantify = %d: %s", qresp.StatusCode, raw)
	}
	var parsed struct {
		Cache  string `json:"cache"`
		Solver struct {
			Converged bool `json:"converged"`
		} `json:"solver"`
	}
	if err := json.Unmarshal(raw, &parsed); err != nil {
		t.Fatalf("decoding response: %v\n%s", err, raw)
	}
	if parsed.Cache != "miss" || !parsed.Solver.Converged {
		t.Fatalf("unexpected response: %s", raw)
	}

	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("drain exit: %v", err)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("daemon did not drain after cancellation")
	}
}

func TestParseAlgorithmRejectsUnknown(t *testing.T) {
	if _, err := parseAlgorithm("simplex"); err == nil {
		t.Fatal("unknown algorithm accepted")
	}
}
