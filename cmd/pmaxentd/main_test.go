package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"privacymaxent/internal/bucket"
	"privacymaxent/internal/dataset"
)

// TestServeQuantifyAndDrain boots the daemon on an ephemeral port, runs
// a quantify round-trip, then cancels the context (the SIGTERM path) and
// expects a clean drain.
func TestServeQuantifyAndDrain(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	ready := make(chan string, 1)
	done := make(chan error, 1)
	go func() {
		done <- run(ctx, options{
			addr:         "127.0.0.1:0",
			timeout:      30 * time.Second,
			retryAfter:   time.Second,
			drainTimeout: 10 * time.Second,
			cacheSize:    4,
		}, ready)
	}()
	var addr string
	select {
	case addr = <-ready:
	case err := <-done:
		t.Fatalf("daemon exited before listening: %v", err)
	case <-time.After(10 * time.Second):
		t.Fatal("daemon never became ready")
	}
	base := "http://" + addr

	resp, err := http.Get(base + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("readyz = %d", resp.StatusCode)
	}

	d, err := bucket.FromPartition(dataset.PaperExample(), dataset.PaperBuckets())
	if err != nil {
		t.Fatal(err)
	}
	var pub bytes.Buffer
	if err := bucket.WriteJSON(&pub, d); err != nil {
		t.Fatal(err)
	}
	body := fmt.Sprintf(`{"published": %s}`, pub.String())
	qresp, err := http.Post(base+"/v1/quantify", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	raw, err := io.ReadAll(qresp.Body)
	qresp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if qresp.StatusCode != http.StatusOK {
		t.Fatalf("quantify = %d: %s", qresp.StatusCode, raw)
	}
	var parsed struct {
		Cache  string `json:"cache"`
		Solver struct {
			Converged bool `json:"converged"`
		} `json:"solver"`
	}
	if err := json.Unmarshal(raw, &parsed); err != nil {
		t.Fatalf("decoding response: %v\n%s", err, raw)
	}
	if parsed.Cache != "miss" || !parsed.Solver.Converged {
		t.Fatalf("unexpected response: %s", raw)
	}

	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("drain exit: %v", err)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("daemon did not drain after cancellation")
	}
}

// TestHistorySurvivesRestart boots the daemon with -history-dir, solves
// once, restarts it on the same directory, and expects /v1/history to
// serve the first generation's record.
func TestHistorySurvivesRestart(t *testing.T) {
	dir := t.TempDir()
	opts := options{
		addr:         "127.0.0.1:0",
		timeout:      30 * time.Second,
		retryAfter:   time.Second,
		drainTimeout: 10 * time.Second,
		cacheSize:    4,
		historyDir:   dir,
		historyKeep:  1024,
		historyFsync: "always",
		doneRing:     8,
	}
	boot := func() (string, context.CancelFunc, chan error) {
		t.Helper()
		ctx, cancel := context.WithCancel(context.Background())
		ready := make(chan string, 1)
		done := make(chan error, 1)
		go func() { done <- run(ctx, opts, ready) }()
		select {
		case addr := <-ready:
			return "http://" + addr, cancel, done
		case err := <-done:
			t.Fatalf("daemon exited before listening: %v", err)
		case <-time.After(10 * time.Second):
			t.Fatal("daemon never became ready")
		}
		panic("unreachable")
	}
	stop := func(cancel context.CancelFunc, done chan error) {
		t.Helper()
		cancel()
		select {
		case err := <-done:
			if err != nil {
				t.Fatalf("drain exit: %v", err)
			}
		case <-time.After(15 * time.Second):
			t.Fatal("daemon did not drain")
		}
	}

	d, err := bucket.FromPartition(dataset.PaperExample(), dataset.PaperBuckets())
	if err != nil {
		t.Fatal(err)
	}
	var pub bytes.Buffer
	if err := bucket.WriteJSON(&pub, d); err != nil {
		t.Fatal(err)
	}

	base, cancel, done := boot()
	qresp, err := http.Post(base+"/v1/quantify", "application/json",
		strings.NewReader(fmt.Sprintf(`{"published": %s}`, pub.String())))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, qresp.Body)
	qresp.Body.Close()
	if qresp.StatusCode != http.StatusOK {
		t.Fatalf("quantify = %d", qresp.StatusCode)
	}
	reqID := qresp.Header.Get("X-Request-Id")
	stop(cancel, done)

	base, cancel, done = boot()
	defer stop(cancel, done)
	hresp, err := http.Get(base + "/v1/history")
	if err != nil {
		t.Fatal(err)
	}
	raw, err := io.ReadAll(hresp.Body)
	hresp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if hresp.StatusCode != http.StatusOK {
		t.Fatalf("/v1/history after restart = %d: %s", hresp.StatusCode, raw)
	}
	var hist struct {
		Records []struct {
			RequestID string `json:"request_id"`
			Outcome   string `json:"outcome"`
		} `json:"records"`
	}
	if err := json.Unmarshal(raw, &hist); err != nil {
		t.Fatal(err)
	}
	if len(hist.Records) != 1 || hist.Records[0].RequestID != reqID || hist.Records[0].Outcome != "ok" {
		t.Fatalf("recovered history does not match the pre-restart solve (request %q): %s", reqID, raw)
	}
}

func TestParseAlgorithmRejectsUnknown(t *testing.T) {
	if _, err := parseAlgorithm("simplex"); err == nil {
		t.Fatal("unknown algorithm accepted")
	}
}
