// Command pmaxentd serves Privacy-MaxEnt quantification over HTTP.
//
//	pmaxentd [-addr :8080] [-cache 16] [-max-inflight N] [-queue N]
//	         [-timeout 60s] [-retry-after 1s] [-drain-timeout 30s]
//	         [-algorithm lbfgs] [-kernel-workers N] [-reduce] [-fast-math]
//	         [-delta]
//	         [-history-dir DIR] [-history-retention 65536] [-history-fsync 1s]
//	         [-done-ring 32] [-sse-keepalive 15s]
//	         [-trace-out trace.jsonl] [-solve-log solve.jsonl]
//	         [-pprof localhost:6060]
//
// Endpoints (JSON over HTTP, see internal/server for the wire schema):
//
//	POST /v1/quantify             quantify a published view; ?audit=1
//	                              inlines the solve audit; ?stream=1
//	                              streams progress over SSE, ending with
//	                              a "result" frame carrying the response;
//	                              "delta": true (with -delta) re-solves
//	                              only constraint components changed
//	                              since the publication's last solve
//	POST /v1/quantify/batch       quantify many knowledge variants over
//	                              one published view; variants share one
//	                              prepared system and coalesce with
//	                              identical in-flight requests; ?stream=1
//	                              emits a variant.done SSE frame per
//	                              variant, then the batch result
//	GET  /v1/solves/{id}/events   SSE stream of one solve's lifecycle and
//	                              sampled iteration events
//	GET  /v1/history              recent solve records from the durable
//	                              journal (requires -history-dir);
//	                              /v1/history/{digest} narrows to one
//	                              publication and adds windowed aggregates
//	POST /v1/rules/mine           mine association rules from inline CSV
//	GET  /debug/solves            JSON snapshot of in-flight (and recent)
//	                              solves with live iteration counts
//	GET  /debug/regressions       active convergence/latency drifts from
//	                              the history regression detector
//	GET  /metrics                 Prometheus text exposition (pmaxentd_*)
//	GET  /healthz                 liveness + build provenance
//	GET  /readyz                  readiness (503 while draining)
//
// With -history-dir set, every finished solve is appended to an
// append-only CRC-framed journal there; on startup the journal is
// recovered (crash-torn tails are skipped), so /v1/history and the
// newest -done-ring entries of /debug/solves survive restarts.
//
// Every response carries an X-Request-Id (accepted from the request, or
// derived from a W3C traceparent, or generated); the same ID appears in
// the access log, spans, solve events and audit provenance. The
// companion pmaxentstat command renders /debug/solves + /metrics as a
// live terminal view.
//
// SIGTERM/SIGINT drain the server: new requests get 503, in-flight
// solves finish (up to -drain-timeout), then the process exits 0.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	_ "net/http/pprof"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"privacymaxent/internal/core"
	"privacymaxent/internal/history"
	"privacymaxent/internal/maxent"
	"privacymaxent/internal/server"
	"privacymaxent/internal/telemetry"
)

type options struct {
	addr          string
	cacheSize     int
	maxInFlight   int
	queue         int
	timeout       time.Duration
	retryAfter    time.Duration
	drainTimeout  time.Duration
	algorithm     string
	kernelWorkers int
	reduce        bool
	fastMath      bool
	delta         bool
	historyDir    string
	historyKeep   int
	historyFsync  string
	doneRing      int
	sseKeepAlive  time.Duration
	traceOut      string
	solveLog      string
	pprofAddr     string
}

func main() {
	var o options
	flag.StringVar(&o.addr, "addr", ":8080", "listen address")
	flag.IntVar(&o.cacheSize, "cache", 16, "prepared-publication LRU capacity")
	flag.IntVar(&o.maxInFlight, "max-inflight", 0, "concurrent solve limit (0 = GOMAXPROCS)")
	flag.IntVar(&o.queue, "queue", 0, "admission queue length (0 = 4x max-inflight, negative = no queue)")
	flag.DurationVar(&o.timeout, "timeout", 60*time.Second, "per-solve budget and cap on client timeout_ms")
	flag.DurationVar(&o.retryAfter, "retry-after", time.Second, "Retry-After hint on 429/503 responses")
	flag.DurationVar(&o.drainTimeout, "drain-timeout", 30*time.Second, "how long SIGTERM waits for in-flight solves before force-canceling")
	flag.StringVar(&o.algorithm, "algorithm", "lbfgs", "dual solver: lbfgs, gis, iis, steepest, newton")
	flag.IntVar(&o.kernelWorkers, "kernel-workers", 0, "worker shards for the in-solve kernels (0 = inherit, <0 = serial)")
	flag.BoolVar(&o.reduce, "reduce", false, "structural presolve: closed-form untouched buckets and Schur-eliminate bucket-local invariant rows before the numeric solve")
	flag.BoolVar(&o.fastMath, "fast-math", false, "reassociated multi-accumulator solve kernels (faster, not bit-identical to the exact kernels)")
	flag.BoolVar(&o.delta, "delta", false, "chain delta baselines per publication: \"delta\": true requests re-solve only constraint components changed since the last converged solve")
	flag.StringVar(&o.historyDir, "history-dir", "", "durable solve-history journal directory (empty disables /v1/history)")
	flag.IntVar(&o.historyKeep, "history-retention", 65536, "minimum journal records kept on disk before old segments are deleted")
	flag.StringVar(&o.historyFsync, "history-fsync", "1s", "journal durability: \"always\", \"never\" or an fsync interval like 1s")
	flag.IntVar(&o.doneRing, "done-ring", 32, "finished solves kept for /debug/solves and SSE replay (also caps journal entries adopted at startup)")
	flag.DurationVar(&o.sseKeepAlive, "sse-keepalive", 15*time.Second, "idle interval before event streams emit a comment heartbeat (negative disables)")
	flag.StringVar(&o.traceOut, "trace-out", "", "write a JSON-lines span trace of every request to this file")
	flag.StringVar(&o.solveLog, "solve-log", "", "write structured solve lifecycle events as JSON lines to this file")
	flag.StringVar(&o.pprofAddr, "pprof", "", "serve net/http/pprof and expvar on this extra address")
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGTERM, syscall.SIGINT)
	defer stop()
	if err := run(ctx, o, nil); err != nil {
		fmt.Fprintln(os.Stderr, "pmaxentd:", err)
		os.Exit(1)
	}
}

// run serves until ctx is canceled, then drains and returns. When ready
// is non-nil the bound address is sent on it once the listener is up —
// the test seam that lets -addr :0 be dialed.
func run(ctx context.Context, o options, ready chan<- string) error {
	alg, err := parseAlgorithm(o.algorithm)
	if err != nil {
		return err
	}

	log := slog.New(slog.NewTextHandler(os.Stderr, nil))
	cfg := server.Config{
		Pipeline: core.Config{
			Solve: maxent.Options{Algorithm: alg, KernelWorkers: o.kernelWorkers, Reduce: o.reduce, FastMath: o.fastMath},
		},
		CacheSize:    o.cacheSize,
		DeltaChain:   o.delta,
		MaxInFlight:  o.maxInFlight,
		MaxQueue:     o.queue,
		SolveTimeout: o.timeout,
		RetryAfter:   o.retryAfter,
		DoneRing:     o.doneRing,
		SSEKeepAlive: o.sseKeepAlive,
		Registry:     telemetry.NewRegistry(),
		Logger:       log,
	}

	var closers []func() error
	defer func() {
		// Reverse order: the history store flushes before the log/trace
		// files it may still be writing to are closed.
		for i := len(closers) - 1; i >= 0; i-- {
			closers[i]()
		}
	}()
	if o.solveLog != "" {
		f, err := os.Create(o.solveLog)
		if err != nil {
			return fmt.Errorf("creating solve log: %w", err)
		}
		closers = append(closers, f.Close)
		cfg.Logger = slog.New(slog.NewJSONHandler(f, nil))
	}
	if o.historyDir != "" {
		fsync, err := history.ParseFsync(o.historyFsync)
		if err != nil {
			return err
		}
		st, err := history.Open(history.StoreConfig{
			Dir:              o.historyDir,
			RetentionRecords: o.historyKeep,
			Fsync:            fsync,
			Registry:         cfg.Registry,
			Logger:           cfg.Logger,
		})
		if err != nil {
			return fmt.Errorf("opening history journal: %w", err)
		}
		closers = append(closers, st.Close)
		cfg.History = st
		log.Info("pmaxentd: history journal open", "dir", st.Dir(),
			"retention", o.historyKeep, "fsync", fsync.String(),
			"recovered", st.Retained())
	}
	if o.traceOut != "" {
		f, err := os.Create(o.traceOut)
		if err != nil {
			return fmt.Errorf("creating trace output: %w", err)
		}
		closers = append(closers, f.Close)
		cfg.Tracer = telemetry.NewTracer(telemetry.NewJSONSink(f))
	}

	srv := server.New(cfg)
	if o.pprofAddr != "" {
		// pprof and expvar register on the default mux; expose the
		// server's registry beside them.
		telemetry.PublishExpvar("pmaxentd", srv.Registry())
		go func() {
			if err := http.ListenAndServe(o.pprofAddr, nil); err != nil {
				log.Warn("pprof server failed", "err", err)
			}
		}()
	}

	ln, err := net.Listen("tcp", o.addr)
	if err != nil {
		return fmt.Errorf("listen %s: %w", o.addr, err)
	}
	if ready != nil {
		ready <- ln.Addr().String()
	}
	log.Info("pmaxentd: serving", "addr", ln.Addr().String(), "algorithm", alg.String())

	hs := &http.Server{Handler: srv}
	serveErr := make(chan error, 1)
	go func() { serveErr <- hs.Serve(ln) }()

	select {
	case err := <-serveErr:
		return fmt.Errorf("serve: %w", err)
	case <-ctx.Done():
	}

	// Drain: refuse new solves, let in-flight ones finish, then close
	// the HTTP side. Order matters — Shutdown alone would wait for
	// hung request bodies without stopping new solve admissions.
	log.Info("pmaxentd: signal received, draining", "timeout", o.drainTimeout)
	drainCtx, cancel := context.WithTimeout(context.Background(), o.drainTimeout)
	defer cancel()
	drainErr := srv.Drain(drainCtx)
	if err := hs.Shutdown(drainCtx); err != nil {
		hs.Close()
		if drainErr == nil {
			drainErr = err
		}
	}
	if drainErr != nil && !errors.Is(drainErr, context.DeadlineExceeded) {
		return fmt.Errorf("drain: %w", drainErr)
	}
	if drainErr != nil {
		log.Warn("pmaxentd: drain timed out, in-flight solves were canceled")
	}
	log.Info("pmaxentd: stopped")
	return nil
}

func parseAlgorithm(s string) (maxent.Algorithm, error) {
	switch strings.ToLower(s) {
	case "lbfgs", "":
		return maxent.LBFGS, nil
	case "gis":
		return maxent.GIS, nil
	case "iis":
		return maxent.IIS, nil
	case "steepest":
		return maxent.SteepestDescent, nil
	case "newton":
		return maxent.Newton, nil
	default:
		return 0, fmt.Errorf("unknown algorithm %q (want lbfgs, gis, iis, steepest or newton)", s)
	}
}
