package privacymaxent

import (
	"privacymaxent/internal/errs"
	"privacymaxent/internal/solver"
)

// Error taxonomy. Every failure a pipeline entry point returns wraps (or
// matches) one of these sentinels, so callers classify errors with the
// standard errors.Is instead of string matching or reaching into
// internal packages:
//
//	rep, err := q.QuantifyContext(ctx, d, knowledge, nil)
//	switch {
//	case errors.Is(err, privacymaxent.ErrInfeasible):
//		// the knowledge contradicts the published data (HTTP 422)
//	case errors.Is(err, privacymaxent.ErrInterrupted):
//		// ctx was cancelled or its deadline expired mid-solve (HTTP 499)
//	case errors.Is(err, privacymaxent.ErrInvalidSchema),
//		errors.Is(err, privacymaxent.ErrNoSensitiveAttribute):
//		// malformed input (HTTP 400)
//	}
//
// The pmaxentd server (internal/server) maps exactly these categories to
// its HTTP statuses.
var (
	// ErrInfeasible reports that the constraint system admits no
	// probability distribution: the supplied background knowledge
	// contradicts the published data's invariants (or itself). Returned
	// by every solve entry point (Quantify, QuantifyVague, Run, ...).
	ErrInfeasible = errs.ErrInfeasible

	// ErrInterrupted reports that a solve was stopped before reaching
	// its tolerance because the context passed to a *Context entry point
	// was cancelled or timed out.
	ErrInterrupted = solver.ErrInterrupted

	// ErrInvalidSchema reports structurally invalid schema input (nil or
	// duplicate attributes, more than one sensitive attribute).
	ErrInvalidSchema = errs.ErrInvalidSchema

	// ErrNoSensitiveAttribute reports an operation that needs a
	// sensitive attribute running over data without one (mining,
	// ground-truth scoring, preparation of a published view).
	ErrNoSensitiveAttribute = errs.ErrNoSensitiveAttribute
)
