// Command benchab runs an interleaved A/B benchmark comparison between two
// checkouts of this repository (a baseline "seed" tree and the current
// "head" tree) and writes the results as JSON.
//
// Interleaving matters: rather than timing all seed reps then all head
// reps, each repetition runs seed immediately followed by head, so slow
// drift in the machine (thermal state, background load, cache warmth)
// biases both trees equally. Medians over the per-rep samples are then
// robust to the occasional outlier rep.
//
// Besides wall-clock, benchab cross-checks solution quality: it runs the
// scripts/accsnap snapshot program in both trees (copying the head version
// into the seed tree when the seed predates it) and compares the reported
// EstimationAccuracy values. A speedup that changes the answer is a bug,
// not an optimization.
//
// Exit status is non-zero when the gate benchmark regresses by more than
// -regress (fractional), or when the gate accuracy differs between trees
// by more than -acctol.
//
// The two sides need not be different checkouts: with -seed and -head
// pointing at the same directory, repeatable -seed-env/-head-env KEY=VALUE
// flags differentiate them instead. That is how the kernel-parallelism A/B
// runs — one tree, seed side pinned to serial kernels:
//
//	benchab -seed . -head . -seed-env PMAXENT_KERNEL_WORKERS=-1 \
//	        -gate BenchmarkSolveWithKnowledge -out BENCH_3.json
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"runtime"
	"sort"
	"strconv"
	"strings"
)

type snapshot struct {
	EstimationAccuracy float64   `json:"estimation_accuracy"`
	MaxDisclosure      float64   `json:"max_disclosure"`
	Converged          bool      `json:"converged"`
	Iterations         int       `json:"iterations"`
	Figure5Accuracies  []float64 `json:"figure5_accuracies"`
	Figure5Converged   []bool    `json:"figure5_converged"`
}

type benchResult struct {
	SeedNs        []float64 `json:"seed_ns_per_op"`
	HeadNs        []float64 `json:"head_ns_per_op"`
	SeedMedianNs  float64   `json:"seed_median_ns"`
	HeadMedianNs  float64   `json:"head_median_ns"`
	Improvement   float64   `json:"improvement"` // (seed-head)/seed, positive = head faster
	IsGate        bool      `json:"is_gate,omitempty"`
	GateRegressed bool      `json:"gate_regressed,omitempty"`
}

type report struct {
	SeedDir          string                  `json:"seed_dir"`
	HeadDir          string                  `json:"head_dir"`
	SeedEnv          []string                `json:"seed_env,omitempty"`
	HeadEnv          []string                `json:"head_env,omitempty"`
	GoVersion        string                  `json:"go_version"`
	NumCPU           int                     `json:"num_cpu"`
	Reps             int                     `json:"reps"`
	BenchTime        string                  `json:"benchtime"`
	BenchRegexp      string                  `json:"bench_regexp"`
	Benchmarks       map[string]*benchResult `json:"benchmarks"`
	SeedSnapshot     *snapshot               `json:"seed_snapshot,omitempty"`
	HeadSnapshot     *snapshot               `json:"head_snapshot,omitempty"`
	GateAccuracyDiff float64                 `json:"gate_accuracy_diff"`
	Figure5MaxDiff   float64                 `json:"figure5_max_accuracy_diff"`
	ConvergedParity  bool                    `json:"converged_parity"`
	Pass             bool                    `json:"pass"`
	Notes            []string                `json:"notes,omitempty"`
}

// envList is a repeatable KEY=VALUE flag.
type envList []string

func (e *envList) String() string { return strings.Join(*e, ",") }

func (e *envList) Set(v string) error {
	if !strings.Contains(v, "=") {
		return fmt.Errorf("want KEY=VALUE, got %q", v)
	}
	*e = append(*e, v)
	return nil
}

func main() {
	var seedEnv, headEnv envList
	flag.Var(&seedEnv, "seed-env", "extra KEY=VALUE for the seed side's processes (repeatable)")
	flag.Var(&headEnv, "head-env", "extra KEY=VALUE for the head side's processes (repeatable)")
	var (
		seedDir   = flag.String("seed", "", "baseline checkout directory (required; may equal -head when -seed-env/-head-env differentiate the sides)")
		headDir   = flag.String("head", ".", "head checkout directory")
		reps      = flag.Int("reps", 5, "interleaved repetitions per tree")
		benchTime = flag.String("benchtime", "1x", "go test -benchtime value")
		benchRe   = flag.String("bench", "BenchmarkSolveWithKnowledge|BenchmarkFigure5", "go test -bench regexp")
		gate      = flag.String("gate", "BenchmarkSolveWithKnowledge", "benchmark that must not regress")
		regress   = flag.Float64("regress", 0.10, "max tolerated fractional regression on the gate benchmark")
		accTol    = flag.Float64("acctol", 1e-9, "max tolerated gate accuracy difference between trees")
		out       = flag.String("out", "BENCH_2.json", "output JSON path")
		skipSnap  = flag.Bool("skip-accuracy", false, "skip the accuracy cross-check")
	)
	flag.Parse()
	if *seedDir == "" {
		fmt.Fprintln(os.Stderr, "benchab: -seed is required")
		os.Exit(2)
	}

	rep := &report{
		SeedDir:     mustAbs(*seedDir),
		HeadDir:     mustAbs(*headDir),
		SeedEnv:     seedEnv,
		HeadEnv:     headEnv,
		GoVersion:   runtime.Version(),
		NumCPU:      runtime.NumCPU(),
		Reps:        *reps,
		BenchTime:   *benchTime,
		BenchRegexp: *benchRe,
		Benchmarks:  map[string]*benchResult{},
	}

	for i := 0; i < *reps; i++ {
		for _, tree := range []struct {
			dir  string
			env  []string
			dest func(*benchResult) *[]float64
		}{
			{rep.SeedDir, seedEnv, func(b *benchResult) *[]float64 { return &b.SeedNs }},
			{rep.HeadDir, headEnv, func(b *benchResult) *[]float64 { return &b.HeadNs }},
		} {
			fmt.Fprintf(os.Stderr, "benchab: rep %d/%d in %s %v\n", i+1, *reps, tree.dir, tree.env)
			samples, err := runBench(tree.dir, *benchRe, *benchTime, tree.env)
			if err != nil {
				fmt.Fprintf(os.Stderr, "benchab: %v\n", err)
				os.Exit(1)
			}
			for name, ns := range samples {
				b := rep.Benchmarks[name]
				if b == nil {
					b = &benchResult{}
					rep.Benchmarks[name] = b
				}
				*tree.dest(b) = append(*tree.dest(b), ns)
			}
		}
	}

	pass := true
	for name, b := range rep.Benchmarks {
		b.SeedMedianNs = median(b.SeedNs)
		b.HeadMedianNs = median(b.HeadNs)
		if b.SeedMedianNs > 0 {
			b.Improvement = (b.SeedMedianNs - b.HeadMedianNs) / b.SeedMedianNs
		}
		if name == *gate {
			b.IsGate = true
			if b.Improvement < -*regress {
				b.GateRegressed = true
				pass = false
				rep.Notes = append(rep.Notes, fmt.Sprintf(
					"gate %s regressed %.1f%% (seed %.0f ns, head %.0f ns)",
					name, -100*b.Improvement, b.SeedMedianNs, b.HeadMedianNs))
			}
		}
	}
	if _, ok := rep.Benchmarks[*gate]; !ok {
		pass = false
		rep.Notes = append(rep.Notes, fmt.Sprintf("gate benchmark %s did not run", *gate))
	}

	if !*skipSnap {
		headSnap, seedSnap, err := accuracySnapshots(rep.HeadDir, rep.SeedDir, headEnv, seedEnv)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchab: accuracy check: %v\n", err)
			os.Exit(1)
		}
		rep.HeadSnapshot, rep.SeedSnapshot = headSnap, seedSnap
		rep.GateAccuracyDiff = math.Abs(headSnap.EstimationAccuracy - seedSnap.EstimationAccuracy)
		rep.ConvergedParity = headSnap.Converged == seedSnap.Converged
		for i := 0; i < len(headSnap.Figure5Accuracies) && i < len(seedSnap.Figure5Accuracies); i++ {
			d := math.Abs(headSnap.Figure5Accuracies[i] - seedSnap.Figure5Accuracies[i])
			if d > rep.Figure5MaxDiff {
				rep.Figure5MaxDiff = d
			}
		}
		if rep.GateAccuracyDiff > *accTol {
			pass = false
			rep.Notes = append(rep.Notes, fmt.Sprintf("gate accuracy differs by %g (tol %g)", rep.GateAccuracyDiff, *accTol))
		}
		if !rep.ConvergedParity {
			pass = false
			rep.Notes = append(rep.Notes, "convergence status differs between trees")
		}
		// Convergence may improve in head but never regress. Baselines that
		// predate per-point flags report all-false and trivially pass.
		for i := 0; i < len(seedSnap.Figure5Converged) && i < len(headSnap.Figure5Converged); i++ {
			if seedSnap.Figure5Converged[i] && !headSnap.Figure5Converged[i] {
				pass = false
				rep.Notes = append(rep.Notes, fmt.Sprintf("figure5 point %d converged in seed but not in head", i))
			}
		}
	}
	rep.Pass = pass

	buf, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchab: %v\n", err)
		os.Exit(1)
	}
	buf = append(buf, '\n')
	if err := os.WriteFile(*out, buf, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "benchab: %v\n", err)
		os.Exit(1)
	}
	os.Stdout.Write(buf)
	if !pass {
		os.Exit(1)
	}
}

var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+\d+\s+([\d.]+) ns/op`)

// runBench runs the benchmark set once in dir and returns ns/op per
// benchmark name (CPU suffix stripped).
func runBench(dir, re, benchTime string, env []string) (map[string]float64, error) {
	cmd := exec.Command("go", "test", "-run=^$", "-bench="+re, "-benchtime="+benchTime, "-count=1", ".")
	cmd.Dir = dir
	cmd.Env = append(os.Environ(), env...)
	var outBuf, errBuf bytes.Buffer
	cmd.Stdout = &outBuf
	cmd.Stderr = &errBuf
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("go test -bench in %s: %v\n%s%s", dir, err, errBuf.String(), outBuf.String())
	}
	samples := map[string]float64{}
	sc := bufio.NewScanner(&outBuf)
	for sc.Scan() {
		mm := benchLine.FindStringSubmatch(strings.TrimSpace(sc.Text()))
		if mm == nil {
			continue
		}
		ns, err := strconv.ParseFloat(mm[2], 64)
		if err != nil {
			continue
		}
		samples[mm[1]] = ns
	}
	if len(samples) == 0 {
		return nil, fmt.Errorf("no benchmark lines parsed from %s output:\n%s", dir, outBuf.String())
	}
	return samples, nil
}

// accuracySnapshots runs scripts/accsnap in both trees. The seed tree may
// predate accsnap, so the head version is copied in as scripts/accsnap_ab
// (a distinct package path, removed afterwards when we created it). The
// snapshot program only uses APIs present in the seed, by construction.
// When both sides are the same directory (env-differentiated A/B) the
// copy is skipped and both snapshots come from the head accsnap.
func accuracySnapshots(headDir, seedDir string, headEnv, seedEnv []string) (head, seed *snapshot, err error) {
	head, err = runSnap(headDir, "./scripts/accsnap", headEnv)
	if err != nil {
		return nil, nil, err
	}
	seedPkg := "./scripts/accsnap_ab"
	if seedDir == headDir {
		seedPkg = "./scripts/accsnap"
	} else {
		abDir := filepath.Join(seedDir, "scripts", "accsnap_ab")
		if _, statErr := os.Stat(abDir); os.IsNotExist(statErr) {
			src, rerr := os.ReadFile(filepath.Join(headDir, "scripts", "accsnap", "main.go"))
			if rerr != nil {
				return nil, nil, rerr
			}
			if err := os.MkdirAll(abDir, 0o755); err != nil {
				return nil, nil, err
			}
			defer os.RemoveAll(abDir)
			if err := os.WriteFile(filepath.Join(abDir, "main.go"), src, 0o644); err != nil {
				return nil, nil, err
			}
		}
	}
	seed, err = runSnap(seedDir, seedPkg, seedEnv)
	if err != nil {
		return nil, nil, err
	}
	return head, seed, nil
}

func runSnap(dir, pkg string, env []string) (*snapshot, error) {
	cmd := exec.Command("go", "run", pkg)
	cmd.Dir = dir
	cmd.Env = append(os.Environ(), env...)
	var outBuf, errBuf bytes.Buffer
	cmd.Stdout = &outBuf
	cmd.Stderr = &errBuf
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("go run %s in %s: %v\n%s", pkg, dir, err, errBuf.String())
	}
	var s snapshot
	if err := json.Unmarshal(outBuf.Bytes(), &s); err != nil {
		return nil, fmt.Errorf("parse %s output in %s: %v", pkg, dir, err)
	}
	return &s, nil
}

func median(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	if n := len(s); n%2 == 1 {
		return s[n/2]
	} else {
		return 0.5 * (s[n/2-1] + s[n/2])
	}
}

func mustAbs(p string) string {
	a, err := filepath.Abs(p)
	if err != nil {
		return p
	}
	return a
}
