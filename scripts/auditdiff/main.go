// Command auditdiff compares two solve-audit snapshots written by
// pmaxent -audit-out (or experiments -audit-dir) and reports drift: a
// per-family residual profile that moved, a binding-knowledge rule set
// that changed, a different convergence outcome, or a trajectory that
// takes a different number of iterations or lands somewhere else.
//
// Usage:
//
//	auditdiff [-rtol 0.05] [-atol 1e-9] [-iter-slack 0.10] old.json new.json
//
// Exit status 0 means no drift beyond the tolerances; 1 means drift (each
// difference is printed, naming the family or rule that moved); 2 means
// the snapshots could not be read.
//
// The comparison is deliberately tolerance-based: two healthy solves of
// the same problem at different commits legitimately differ in the last
// few bits of every residual, so exact equality would flag every rebuild.
// Drift worth failing CI over is a family whose residual profile moved
// beyond -rtol/-atol, a knowledge rule entering or leaving the binding
// set, or an iteration count off by more than -iter-slack.
//
// Provenance fields (workers, kernel_workers, reduced_dual_dim,
// eliminated_buckets, build, request_id) are deliberately excluded
// from the comparison: the solver's blocked kernels are bit-deterministic
// at any worker count, so auditing one solve run serially and once with
// -kernel-workers N and diffing the snapshots must report zero drift —
// that clean diff is the parity certificate for the parallel kernels.
// The same holds for the structural presolve: a -reduce audit against a
// full-dual audit of one problem certifies the reduction's parity.
package main

import (
	"flag"
	"fmt"
	"math"
	"os"
	"sort"
	"strings"

	"privacymaxent/internal/audit"
)

func main() {
	var (
		rtol      = flag.Float64("rtol", 0.05, "relative tolerance for residual/entropy comparisons")
		atol      = flag.Float64("atol", 1e-9, "absolute tolerance floor (differences below it never count as drift)")
		iterSlack = flag.Float64("iter-slack", 0.10, "fractional slack on the iteration count")
	)
	flag.Parse()
	if flag.NArg() != 2 {
		fmt.Fprintln(os.Stderr, "usage: auditdiff [flags] old.json new.json")
		os.Exit(2)
	}
	oldA, err := audit.ReadFile(flag.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, "auditdiff:", err)
		os.Exit(2)
	}
	newA, err := audit.ReadFile(flag.Arg(1))
	if err != nil {
		fmt.Fprintln(os.Stderr, "auditdiff:", err)
		os.Exit(2)
	}
	drifts := diff(oldA, newA, *rtol, *atol, *iterSlack)
	if len(drifts) == 0 {
		fmt.Printf("no drift: %s and %s agree within rtol=%g atol=%g\n", flag.Arg(0), flag.Arg(1), *rtol, *atol)
		return
	}
	fmt.Printf("%d drift(s) between %s and %s:\n", len(drifts), flag.Arg(0), flag.Arg(1))
	for _, d := range drifts {
		fmt.Println("  -", d)
	}
	os.Exit(1)
}

// withinTol reports whether a and b agree up to the mixed
// relative/absolute tolerance.
func withinTol(a, b, rtol, atol float64) bool {
	d := math.Abs(a - b)
	if d <= atol {
		return true
	}
	scale := math.Max(math.Abs(a), math.Abs(b))
	return d <= rtol*scale
}

// diff returns one human-readable line per drift found.
func diff(oldA, newA *audit.SolveAudit, rtol, atol, iterSlack float64) []string {
	var out []string

	// Outcome drift: convergence and feasibility are binary health bits.
	if oldA.Converged != newA.Converged {
		out = append(out, fmt.Sprintf("convergence changed: %v -> %v", oldA.Converged, newA.Converged))
	}
	if oldA.Feasible != newA.Feasible {
		out = append(out, fmt.Sprintf("feasibility changed: %v -> %v", oldA.Feasible, newA.Feasible))
	}

	// Per-family residual profile.
	oldFams := familyMap(oldA)
	newFams := familyMap(newA)
	for _, name := range familyNames(oldFams, newFams) {
		of, oldHas := oldFams[name]
		nf, newHas := newFams[name]
		switch {
		case !newHas:
			out = append(out, fmt.Sprintf("family %q disappeared (%d rows before)", name, of.Rows))
		case !oldHas:
			out = append(out, fmt.Sprintf("family %q appeared (%d rows)", name, nf.Rows))
		default:
			if of.Rows != nf.Rows {
				out = append(out, fmt.Sprintf("family %q rows changed: %d -> %d", name, of.Rows, nf.Rows))
			}
			if of.Violations != nf.Violations {
				out = append(out, fmt.Sprintf("family %q violations changed: %d -> %d", name, of.Violations, nf.Violations))
			}
			if !withinTol(of.MaxAbsResidual, nf.MaxAbsResidual, rtol, atol) {
				out = append(out, fmt.Sprintf("family %q max residual drifted: %.3e -> %.3e", name, of.MaxAbsResidual, nf.MaxAbsResidual))
			}
			if !withinTol(of.MeanAbsResidual, nf.MeanAbsResidual, rtol, atol) {
				out = append(out, fmt.Sprintf("family %q mean residual drifted: %.3e -> %.3e", name, of.MeanAbsResidual, nf.MeanAbsResidual))
			}
		}
	}

	// Binding-knowledge set: membership matters, the λ magnitude ordering
	// within the set is allowed to wobble.
	oldSet := bindingSet(oldA)
	newSet := bindingSet(newA)
	for _, label := range sortedKeys(oldSet) {
		if !newSet[label] {
			out = append(out, fmt.Sprintf("knowledge rule no longer binding: %s", label))
		}
	}
	for _, label := range sortedKeys(newSet) {
		if !oldSet[label] {
			out = append(out, fmt.Sprintf("knowledge rule newly binding: %s", label))
		}
	}

	// Solution-level scalars.
	if !withinTol(oldA.Entropy, newA.Entropy, rtol, atol) {
		out = append(out, fmt.Sprintf("entropy drifted: %.6g -> %.6g nats", oldA.Entropy, newA.Entropy))
	}
	if !withinTol(oldA.MaxViolation, newA.MaxViolation, rtol, atol) {
		out = append(out, fmt.Sprintf("max violation drifted: %.3e -> %.3e", oldA.MaxViolation, newA.MaxViolation))
	}

	// Trajectory: iteration count within slack, and the final point must
	// land at a comparable objective.
	oi, ni := oldA.Iterations, newA.Iterations
	slack := iterSlack * math.Max(float64(oi), float64(ni))
	if math.Abs(float64(oi-ni)) > math.Max(slack, 1) {
		out = append(out, fmt.Sprintf("iteration count drifted: %d -> %d (slack %.0f)", oi, ni, math.Max(slack, 1)))
	}
	if len(oldA.Trajectory) > 0 && len(newA.Trajectory) > 0 {
		of := oldA.Trajectory[len(oldA.Trajectory)-1]
		nf := newA.Trajectory[len(newA.Trajectory)-1]
		if !withinTol(of.Objective, nf.Objective, rtol, atol) {
			out = append(out, fmt.Sprintf("final objective drifted: %.6g -> %.6g", of.Objective, nf.Objective))
		}
	} else if (len(oldA.Trajectory) == 0) != (len(newA.Trajectory) == 0) {
		out = append(out, fmt.Sprintf("trajectory presence changed: %d -> %d points", len(oldA.Trajectory), len(newA.Trajectory)))
	}

	return out
}

func familyMap(a *audit.SolveAudit) map[string]audit.FamilySummary {
	m := make(map[string]audit.FamilySummary, len(a.Families))
	for _, f := range a.Families {
		m[f.Family] = f
	}
	return m
}

func familyNames(a, b map[string]audit.FamilySummary) []string {
	seen := map[string]bool{}
	var names []string
	for n := range a {
		if !seen[n] {
			seen[n] = true
			names = append(names, n)
		}
	}
	for n := range b {
		if !seen[n] {
			seen[n] = true
			names = append(names, n)
		}
	}
	sort.Strings(names)
	return names
}

// bindingSet keys the binding-knowledge rows by label. Rules whose
// multiplier is numerically negligible are excluded: a λ that flips from
// 1e-14 to 0 across commits is noise, not a rule gaining or losing power.
func bindingSet(a *audit.SolveAudit) map[string]bool {
	set := map[string]bool{}
	for _, d := range a.BindingKnowledge {
		if math.Abs(d.Lambda) > 1e-9 {
			set[strings.TrimSpace(d.Label)] = true
		}
	}
	return set
}

func sortedKeys(m map[string]bool) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
