package main

import (
	"strings"
	"testing"

	"privacymaxent/internal/audit"
	"privacymaxent/internal/maxent"
)

func sampleAudit() *audit.SolveAudit {
	return &audit.SolveAudit{
		Converged:    true,
		Iterations:   42,
		MaxViolation: 3e-10,
		Feasible:     true,
		Entropy:      2.5,
		Families: []audit.FamilySummary{
			{Family: "QI-invariant", Rows: 9, MaxAbsResidual: 2e-10, MeanAbsResidual: 1e-10},
			{Family: "knowledge", Rows: 4, MaxAbsResidual: 3e-10, MeanAbsResidual: 2e-10},
		},
		BindingKnowledge: []audit.DualRow{
			{Label: "P(Flu | Gender=male) = 0.5", Family: "knowledge", Lambda: 33.4},
		},
		Trajectory: []audit.TrajectoryPoint{
			{Index: 42, TracePoint: maxent.TracePoint{Iteration: 42, Objective: -2.5, GradNorm: 1e-10}},
		},
	}
}

func TestDiffIdentical(t *testing.T) {
	a, b := sampleAudit(), sampleAudit()
	if drifts := diff(a, b, 0.05, 1e-9, 0.10); len(drifts) != 0 {
		t.Fatalf("identical audits report drift: %v", drifts)
	}
}

func TestDiffPerturbedFamily(t *testing.T) {
	a, b := sampleAudit(), sampleAudit()
	b.Families[1].MaxAbsResidual = 1e-3
	b.Families[1].Violations = 2
	drifts := diff(a, b, 0.05, 1e-9, 0.10)
	if len(drifts) == 0 {
		t.Fatal("perturbed family not reported")
	}
	found := false
	for _, d := range drifts {
		if strings.Contains(d, `"knowledge"`) {
			found = true
		}
	}
	if !found {
		t.Fatalf("drift does not name the changed family: %v", drifts)
	}
}

func TestDiffBindingSetChange(t *testing.T) {
	a, b := sampleAudit(), sampleAudit()
	b.BindingKnowledge = []audit.DualRow{
		{Label: "P(Pneumonia | Age=40-60) = 0.25", Family: "knowledge", Lambda: -5.1},
	}
	drifts := diff(a, b, 0.05, 1e-9, 0.10)
	var lost, gained bool
	for _, d := range drifts {
		if strings.Contains(d, "no longer binding") && strings.Contains(d, "Flu") {
			lost = true
		}
		if strings.Contains(d, "newly binding") && strings.Contains(d, "Pneumonia") {
			gained = true
		}
	}
	if !lost || !gained {
		t.Fatalf("binding-set change not reported both ways: %v", drifts)
	}
}

func TestDiffToleratesNoise(t *testing.T) {
	a, b := sampleAudit(), sampleAudit()
	// Last-bit wobble in residuals and one extra iteration: healthy
	// rebuild noise, not drift.
	b.Families[0].MaxAbsResidual *= 1.01
	b.MaxViolation *= 0.99
	b.Iterations = 43
	b.Trajectory[0].Index = 43
	if drifts := diff(a, b, 0.05, 1e-9, 0.10); len(drifts) != 0 {
		t.Fatalf("noise flagged as drift: %v", drifts)
	}
}

func TestDiffConvergenceFlip(t *testing.T) {
	a, b := sampleAudit(), sampleAudit()
	b.Converged = false
	drifts := diff(a, b, 0.05, 1e-9, 0.10)
	if len(drifts) == 0 || !strings.Contains(drifts[0], "convergence") {
		t.Fatalf("convergence flip not reported first: %v", drifts)
	}
}
