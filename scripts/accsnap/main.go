// Command accsnap prints a JSON snapshot of the pipeline's numerical
// outputs on the standard benchmark workload (2000 synthetic Adult
// records, Top-100 mixed knowledge, plus the Figure 5 accuracy series).
// The A/B harness (scripts/benchab) runs it in two checkouts of this
// repository and diffs the numbers: performance work must leave the
// posterior untouched, so any EstimationAccuracy drift beyond solver
// tolerance between the two snapshots fails the comparison.
//
// The workload is fully deterministic (fixed seed, no wall-clock inputs
// in the solve path), so equal code ⇒ byte-equal snapshots.
package main

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
	"reflect"
	"strconv"

	"privacymaxent/internal/assoc"
	"privacymaxent/internal/constraint"
	"privacymaxent/internal/experiments"
	"privacymaxent/internal/maxent"
	"privacymaxent/internal/metrics"
)

func die(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "accsnap:", err)
		os.Exit(1)
	}
}

// setIntField assigns an int field by name when the struct has it. Like
// the Converged reflection below, this keeps the source compiling in
// baseline checkouts that predate the field: kernel-worker A/B runs set
// PMAXENT_KERNEL_WORKERS per tree, and a tree without the knob simply
// ignores it.
func setIntField(ptr any, name string, val int) {
	f := reflect.ValueOf(ptr).Elem().FieldByName(name)
	if f.IsValid() && f.CanSet() && f.Kind() == reflect.Int {
		f.SetInt(int64(val))
	}
}

// setBoolField is setIntField's bool counterpart, for the Reduce and
// FastMath knobs (PMAXENT_REDUCE / PMAXENT_FAST_MATH per tree).
func setBoolField(ptr any, name string, val bool) {
	f := reflect.ValueOf(ptr).Elem().FieldByName(name)
	if f.IsValid() && f.CanSet() && f.Kind() == reflect.Bool {
		f.SetBool(val)
	}
}

// deltaParity is the PMAXENT_DELTA cross-check: solve the
// BenchmarkDeltaResolve workload (invariants + Top-(25,25), top rule
// held out of the baseline) both cold and through maxent.SolveDelta, and
// fail unless the delta path actually reused components and its
// posterior scores match the cold solve to within solver tolerance. The
// returned map is merged into the snapshot for the record; the emitted
// headline numbers stay cold-path either way, so the A/B harness's
// seed-vs-head comparison is unaffected. (Direct SolveDelta use means
// this file no longer compiles in pre-delta checkouts; the benchab
// cross-tree copy is only taken for same-repo env A/Bs here, which share
// one tree.)
func deltaParity(in *experiments.Instance, opts maxent.Options) (map[string]any, error) {
	sp := constraint.NewSpace(in.Data)
	selected := assoc.TopK(in.Rules, 25, 25)
	base := constraint.DataInvariants(sp, constraint.InvariantOptions{DropRedundant: true})
	for _, r := range selected[1:] {
		kn := r.Knowledge()
		c, err := kn.Constraint(sp)
		if err != nil {
			return nil, err
		}
		if err := base.Add(c); err != nil {
			return nil, err
		}
	}
	opts.Decompose = true
	opts.Solver.MaxIterations = 5000
	baseline, err := maxent.Solve(base, opts)
	if err != nil {
		return nil, err
	}
	if !baseline.Stats.Converged {
		return nil, fmt.Errorf("delta parity: baseline did not converge: %s", baseline.Stats)
	}
	full := base.Clone()
	kn := selected[0].Knowledge()
	c, err := kn.Constraint(sp)
	if err != nil {
		return nil, err
	}
	if err := full.Add(c); err != nil {
		return nil, err
	}
	cold, err := maxent.Solve(full, opts)
	if err != nil {
		return nil, err
	}
	delta, err := maxent.SolveDelta(full, &maxent.Baseline{Sys: base, Sol: baseline}, opts)
	if err != nil {
		return nil, err
	}
	if delta.Stats.ReusedComponents == 0 {
		return nil, fmt.Errorf("delta parity: no components reused — delta fell back to a cold solve")
	}
	if cold.Stats.Converged != delta.Stats.Converged {
		return nil, fmt.Errorf("delta parity: convergence differs (cold %v, delta %v)", cold.Stats.Converged, delta.Stats.Converged)
	}
	accCold, err := metrics.EstimationAccuracy(in.Truth, cold.Posterior())
	if err != nil {
		return nil, err
	}
	accDelta, err := metrics.EstimationAccuracy(in.Truth, delta.Posterior())
	if err != nil {
		return nil, err
	}
	const tol = 1e-9
	accDiff := math.Abs(accCold - accDelta)
	discDiff := math.Abs(metrics.MaxDisclosure(cold.Posterior()) - metrics.MaxDisclosure(delta.Posterior()))
	if accDiff > tol || discDiff > tol {
		return nil, fmt.Errorf("delta parity: posterior diverges (accuracy diff %g, disclosure diff %g, tol %g)", accDiff, discDiff, tol)
	}
	return map[string]any{
		"delta_reused_components":   delta.Stats.ReusedComponents,
		"delta_dirty_components":    delta.Stats.DirtyComponents,
		"delta_accuracy_diff":       accDiff,
		"delta_max_disclosure_diff": discDiff,
	}, nil
}

func main() {
	kernelWorkers, _ := strconv.Atoi(os.Getenv("PMAXENT_KERNEL_WORKERS"))
	reduce := os.Getenv("PMAXENT_REDUCE") == "1"
	fastMath := os.Getenv("PMAXENT_FAST_MATH") == "1"
	deltaCheck := os.Getenv("PMAXENT_DELTA") == "1"

	cfg := experiments.Config{Records: 2000, Seed: 1, MaxRuleSize: 2}
	setIntField(&cfg, "KernelWorkers", kernelWorkers)
	setBoolField(&cfg, "Reduce", reduce)
	setBoolField(&cfg, "FastMath", fastMath)
	in, err := experiments.NewInstance(cfg)
	die(err)

	// The BenchmarkSolveWithKnowledge workload: invariants + Top-(50,50).
	sp := constraint.NewSpace(in.Data)
	sys := constraint.DataInvariants(sp, constraint.InvariantOptions{DropRedundant: true})
	for _, r := range assoc.TopK(in.Rules, 50, 50) {
		kn := r.Knowledge()
		c, err := kn.Constraint(sp)
		die(err)
		die(sys.Add(c))
	}
	solveOpts := maxent.Options{Decompose: true}
	setIntField(&solveOpts, "KernelWorkers", kernelWorkers)
	setBoolField(&solveOpts, "Reduce", reduce)
	setBoolField(&solveOpts, "FastMath", fastMath)
	sol, err := maxent.Solve(sys, solveOpts)
	die(err)
	post := sol.Posterior()
	acc, err := metrics.EstimationAccuracy(in.Truth, post)
	die(err)

	// The BenchmarkFigure5 workload: every accuracy point of the sweep.
	fig5, err := experiments.Figure5(in)
	die(err)
	var fig5Points []float64
	var fig5Conv []bool
	converged := sol.Stats.Converged
	for _, s := range fig5 {
		for _, p := range s.Points {
			fig5Points = append(fig5Points, p.Y)
			// Point.Converged is read by reflection so this program also
			// compiles in baseline checkouts that predate the field (the
			// A/B harness builds it in both trees); absent means false.
			c := reflect.ValueOf(p).FieldByName("Converged")
			fig5Conv = append(fig5Conv, c.IsValid() && c.Bool())
		}
	}

	out := map[string]any{
		"estimation_accuracy": acc,
		"max_disclosure":      metrics.MaxDisclosure(post),
		"converged":           converged,
		"iterations":          sol.Stats.Iterations,
		"figure5_accuracies":  fig5Points,
		"figure5_converged":   fig5Conv,
	}
	if deltaCheck {
		extra, err := deltaParity(in, solveOpts)
		die(err)
		for k, v := range extra {
			out[k] = v
		}
	}
	die(json.NewEncoder(os.Stdout).Encode(out))
}
