// Command accsnap prints a JSON snapshot of the pipeline's numerical
// outputs on the standard benchmark workload (2000 synthetic Adult
// records, Top-100 mixed knowledge, plus the Figure 5 accuracy series).
// The A/B harness (scripts/benchab) runs it in two checkouts of this
// repository and diffs the numbers: performance work must leave the
// posterior untouched, so any EstimationAccuracy drift beyond solver
// tolerance between the two snapshots fails the comparison.
//
// The workload is fully deterministic (fixed seed, no wall-clock inputs
// in the solve path), so equal code ⇒ byte-equal snapshots.
package main

import (
	"encoding/json"
	"fmt"
	"os"
	"reflect"
	"strconv"

	"privacymaxent/internal/assoc"
	"privacymaxent/internal/constraint"
	"privacymaxent/internal/experiments"
	"privacymaxent/internal/maxent"
	"privacymaxent/internal/metrics"
)

func die(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "accsnap:", err)
		os.Exit(1)
	}
}

// setIntField assigns an int field by name when the struct has it. Like
// the Converged reflection below, this keeps the source compiling in
// baseline checkouts that predate the field: kernel-worker A/B runs set
// PMAXENT_KERNEL_WORKERS per tree, and a tree without the knob simply
// ignores it.
func setIntField(ptr any, name string, val int) {
	f := reflect.ValueOf(ptr).Elem().FieldByName(name)
	if f.IsValid() && f.CanSet() && f.Kind() == reflect.Int {
		f.SetInt(int64(val))
	}
}

// setBoolField is setIntField's bool counterpart, for the Reduce and
// FastMath knobs (PMAXENT_REDUCE / PMAXENT_FAST_MATH per tree).
func setBoolField(ptr any, name string, val bool) {
	f := reflect.ValueOf(ptr).Elem().FieldByName(name)
	if f.IsValid() && f.CanSet() && f.Kind() == reflect.Bool {
		f.SetBool(val)
	}
}

func main() {
	kernelWorkers, _ := strconv.Atoi(os.Getenv("PMAXENT_KERNEL_WORKERS"))
	reduce := os.Getenv("PMAXENT_REDUCE") == "1"
	fastMath := os.Getenv("PMAXENT_FAST_MATH") == "1"

	cfg := experiments.Config{Records: 2000, Seed: 1, MaxRuleSize: 2}
	setIntField(&cfg, "KernelWorkers", kernelWorkers)
	setBoolField(&cfg, "Reduce", reduce)
	setBoolField(&cfg, "FastMath", fastMath)
	in, err := experiments.NewInstance(cfg)
	die(err)

	// The BenchmarkSolveWithKnowledge workload: invariants + Top-(50,50).
	sp := constraint.NewSpace(in.Data)
	sys := constraint.DataInvariants(sp, constraint.InvariantOptions{DropRedundant: true})
	for _, r := range assoc.TopK(in.Rules, 50, 50) {
		kn := r.Knowledge()
		c, err := kn.Constraint(sp)
		die(err)
		die(sys.Add(c))
	}
	solveOpts := maxent.Options{Decompose: true}
	setIntField(&solveOpts, "KernelWorkers", kernelWorkers)
	setBoolField(&solveOpts, "Reduce", reduce)
	setBoolField(&solveOpts, "FastMath", fastMath)
	sol, err := maxent.Solve(sys, solveOpts)
	die(err)
	post := sol.Posterior()
	acc, err := metrics.EstimationAccuracy(in.Truth, post)
	die(err)

	// The BenchmarkFigure5 workload: every accuracy point of the sweep.
	fig5, err := experiments.Figure5(in)
	die(err)
	var fig5Points []float64
	var fig5Conv []bool
	converged := sol.Stats.Converged
	for _, s := range fig5 {
		for _, p := range s.Points {
			fig5Points = append(fig5Points, p.Y)
			// Point.Converged is read by reflection so this program also
			// compiles in baseline checkouts that predate the field (the
			// A/B harness builds it in both trees); absent means false.
			c := reflect.ValueOf(p).FieldByName("Converged")
			fig5Conv = append(fig5Conv, c.IsValid() && c.Bool())
		}
	}

	die(json.NewEncoder(os.Stdout).Encode(map[string]any{
		"estimation_accuracy": acc,
		"max_disclosure":      metrics.MaxDisclosure(post),
		"converged":           converged,
		"iterations":          sol.Stats.Iterations,
		"figure5_accuracies":  fig5Points,
		"figure5_converged":   fig5Conv,
	}))
}
