// Command metricslint checks a pmaxentd /metrics scrape against the
// checked-in allowlist: every pmaxentd_* family in the allowlist must be
// present in the scrape (a disappeared metric silently breaks dashboards
// and alerts), every pmaxentd_* family in the scrape must be allowlisted
// (new names are added deliberately, with review, not by accident), and
// every name must follow Prometheus conventions — lowercase start,
// [a-z0-9_] charset, non-empty HELP text, counters ending in _total and
// histograms in a unit suffix (_seconds/_bytes) unless the allowlist
// annotates them as dimensionless counts.
//
// Usage:
//
//	curl -s localhost:8080/metrics | metricslint -allowlist scripts/metricslint/allowlist.txt
//	metricslint -allowlist allowlist.txt scrape.txt
//
// Allowlist lines are "name" or "name count"; the count annotation marks
// a histogram whose observations are dimensionless counts (iterations,
// buckets), exempting it from the unit-suffix rule.
//
// Exit status 0 means the scrape and allowlist agree; 1 lists every
// violation; 2 means inputs could not be read.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"sort"
	"strings"
)

// nameRE is the Prometheus metric-name convention this repo enforces:
// stricter than the spec (which also allows ':' and uppercase) because
// every pmaxentd series is flat snake_case.
var nameRE = regexp.MustCompile(`^[a-z][a-z0-9_]*$`)

// allowlist is the parsed allowlist: the family names plus their
// annotations.
type allowlist struct {
	names map[string]bool
	// countHist marks histograms of dimensionless counts, exempt from
	// the _seconds/_bytes suffix rule.
	countHist map[string]bool
}

// familyInfo is what the scrape declares about one family.
type familyInfo struct {
	typ     string // counter | gauge | histogram (from # TYPE)
	hasHelp bool   // a non-empty # HELP line was present
}

func main() {
	allowPath := flag.String("allowlist", "", "path to the newline-separated metric-family allowlist")
	flag.Parse()
	if *allowPath == "" {
		fmt.Fprintln(os.Stderr, "metricslint: -allowlist is required")
		os.Exit(2)
	}
	allow, err := readAllowlist(*allowPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "metricslint:", err)
		os.Exit(2)
	}
	var in io.Reader = os.Stdin
	if flag.NArg() > 0 {
		f, err := os.Open(flag.Arg(0))
		if err != nil {
			fmt.Fprintln(os.Stderr, "metricslint:", err)
			os.Exit(2)
		}
		defer f.Close()
		in = f
	}
	scrape, err := io.ReadAll(in)
	if err != nil {
		fmt.Fprintln(os.Stderr, "metricslint:", err)
		os.Exit(2)
	}
	problems := lint(string(scrape), allow)
	if len(problems) == 0 {
		fmt.Printf("metricslint: %d allowlisted pmaxentd families all present and well-formed\n", len(allow.names))
		return
	}
	for _, p := range problems {
		fmt.Println("metricslint:", p)
	}
	os.Exit(1)
}

func readAllowlist(path string) (*allowlist, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	allow := &allowlist{names: make(map[string]bool), countHist: make(map[string]bool)}
	sc := bufio.NewScanner(f)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		name, annot, _ := strings.Cut(line, " ")
		allow.names[name] = true
		switch strings.TrimSpace(annot) {
		case "":
		case "count":
			allow.countHist[name] = true
		default:
			return nil, fmt.Errorf("%s:%d: unknown annotation %q (want \"count\")", path, lineNo, annot)
		}
	}
	return allow, sc.Err()
}

// families extracts the pmaxentd_* metric families from a Prometheus
// text scrape — their declared type and whether HELP text was present —
// folding histogram sample suffixes (_bucket/_sum/_count) back onto
// their family when the family was declared by a # TYPE line.
func families(scrape string) map[string]*familyInfo {
	seen := make(map[string]*familyInfo)
	get := func(name string) *familyInfo {
		fi, ok := seen[name]
		if !ok {
			fi = &familyInfo{}
			seen[name] = fi
		}
		return fi
	}
	for _, line := range strings.Split(scrape, "\n") {
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		if rest, ok := strings.CutPrefix(line, "# TYPE "); ok {
			if name, typ, found := strings.Cut(rest, " "); found {
				get(name).typ = strings.TrimSpace(typ)
			}
			continue
		}
		if rest, ok := strings.CutPrefix(line, "# HELP "); ok {
			if name, help, found := strings.Cut(rest, " "); found && strings.TrimSpace(help) != "" {
				get(name).hasHelp = true
			}
			continue
		}
		if strings.HasPrefix(line, "#") {
			continue
		}
		name := line
		if i := strings.IndexAny(name, "{ "); i >= 0 {
			name = name[:i]
		}
		for _, suffix := range []string{"_bucket", "_sum", "_count"} {
			if base, ok := strings.CutSuffix(name, suffix); ok {
				if fi, declared := seen[base]; declared && fi.typ == "histogram" {
					name = base
					break
				}
			}
		}
		get(name)
	}
	return seen
}

// ours reports whether a family belongs to this repo's namespace:
// daemon-level families (pmaxentd_*) and pipeline-level families
// (pmaxent_*, recorded by the solve path itself) are both ours.
func ours(name string) bool {
	return strings.HasPrefix(name, "pmaxentd_") || strings.HasPrefix(name, "pmaxent_")
}

// lint compares the scrape's pmaxentd families against the allowlist and
// the naming conventions, returning one line per violation.
func lint(scrape string, allow *allowlist) []string {
	var problems []string
	seen := families(scrape)
	for name, fi := range seen {
		if !ours(name) {
			continue
		}
		if !nameRE.MatchString(name) {
			problems = append(problems, fmt.Sprintf("metric %q violates the naming convention (want %s)", name, nameRE))
		}
		if !allow.names[name] {
			problems = append(problems, fmt.Sprintf("metric %q is not in the allowlist (new metrics are added there deliberately)", name))
		}
		if !fi.hasHelp {
			problems = append(problems, fmt.Sprintf("metric %q has no HELP text (declare it with Registry.SetHelp)", name))
		}
		switch fi.typ {
		case "counter":
			if !strings.HasSuffix(name, "_total") {
				problems = append(problems, fmt.Sprintf("counter %q must end in _total", name))
			}
		case "histogram":
			if !strings.HasSuffix(name, "_seconds") && !strings.HasSuffix(name, "_bytes") && !allow.countHist[name] {
				problems = append(problems, fmt.Sprintf("histogram %q needs a unit suffix (_seconds/_bytes) or a \"count\" allowlist annotation", name))
			}
		}
	}
	for name := range allow.names {
		if _, ok := seen[name]; !ok {
			problems = append(problems, fmt.Sprintf("allowlisted metric %q missing from the scrape (removal breaks dashboards; update the allowlist if intentional)", name))
		}
	}
	sort.Strings(problems)
	return problems
}
