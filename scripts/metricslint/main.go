// Command metricslint checks a pmaxentd /metrics scrape against the
// checked-in allowlist: every pmaxentd_* family in the allowlist must be
// present in the scrape (a disappeared metric silently breaks dashboards
// and alerts), every pmaxentd_* family in the scrape must be allowlisted
// (new names are added deliberately, with review, not by accident), and
// every name must follow Prometheus conventions (lowercase start,
// [a-z0-9_] charset, unit-suffixed histograms, _total counters).
//
// Usage:
//
//	curl -s localhost:8080/metrics | metricslint -allowlist scripts/metricslint/allowlist.txt
//	metricslint -allowlist allowlist.txt scrape.txt
//
// Exit status 0 means the scrape and allowlist agree; 1 lists every
// violation; 2 means inputs could not be read.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"sort"
	"strings"
)

// nameRE is the Prometheus metric-name convention this repo enforces:
// stricter than the spec (which also allows ':' and uppercase) because
// every pmaxentd series is flat snake_case.
var nameRE = regexp.MustCompile(`^[a-z][a-z0-9_]*$`)

func main() {
	allowPath := flag.String("allowlist", "", "path to the newline-separated metric-family allowlist")
	flag.Parse()
	if *allowPath == "" {
		fmt.Fprintln(os.Stderr, "metricslint: -allowlist is required")
		os.Exit(2)
	}
	allow, err := readAllowlist(*allowPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "metricslint:", err)
		os.Exit(2)
	}
	var in io.Reader = os.Stdin
	if flag.NArg() > 0 {
		f, err := os.Open(flag.Arg(0))
		if err != nil {
			fmt.Fprintln(os.Stderr, "metricslint:", err)
			os.Exit(2)
		}
		defer f.Close()
		in = f
	}
	scrape, err := io.ReadAll(in)
	if err != nil {
		fmt.Fprintln(os.Stderr, "metricslint:", err)
		os.Exit(2)
	}
	problems := lint(string(scrape), allow)
	if len(problems) == 0 {
		fmt.Printf("metricslint: %d allowlisted pmaxentd families all present and well-formed\n", len(allow))
		return
	}
	for _, p := range problems {
		fmt.Println("metricslint:", p)
	}
	os.Exit(1)
}

func readAllowlist(path string) (map[string]bool, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	allow := make(map[string]bool)
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		allow[line] = true
	}
	return allow, sc.Err()
}

// families extracts the pmaxentd_* metric-family names from a Prometheus
// text scrape, folding histogram sample suffixes (_bucket/_sum/_count)
// back onto their family when the family was declared by a # TYPE line.
func families(scrape string) map[string]bool {
	declared := make(map[string]bool) // families with a # TYPE line
	seen := make(map[string]bool)
	for _, line := range strings.Split(scrape, "\n") {
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		if rest, ok := strings.CutPrefix(line, "# TYPE "); ok {
			if name, _, found := strings.Cut(rest, " "); found {
				declared[name] = true
			}
			continue
		}
		if strings.HasPrefix(line, "#") {
			continue
		}
		name := line
		if i := strings.IndexAny(name, "{ "); i >= 0 {
			name = name[:i]
		}
		for _, suffix := range []string{"_bucket", "_sum", "_count"} {
			if base, ok := strings.CutSuffix(name, suffix); ok && declared[base] {
				name = base
				break
			}
		}
		seen[name] = true
	}
	return seen
}

// lint compares the scrape's pmaxentd families against the allowlist and
// the naming convention, returning one line per violation.
func lint(scrape string, allow map[string]bool) []string {
	var problems []string
	seen := families(scrape)
	for name := range seen {
		// Daemon-level families (pmaxentd_*) and pipeline-level families
		// (pmaxent_*, recorded by the solve path itself) are both ours.
		if !strings.HasPrefix(name, "pmaxentd_") && !strings.HasPrefix(name, "pmaxent_") {
			continue
		}
		if !nameRE.MatchString(name) {
			problems = append(problems, fmt.Sprintf("metric %q violates the naming convention (want %s)", name, nameRE))
		}
		if !allow[name] {
			problems = append(problems, fmt.Sprintf("metric %q is not in the allowlist (new metrics are added there deliberately)", name))
		}
	}
	for name := range allow {
		if !seen[name] {
			problems = append(problems, fmt.Sprintf("allowlisted metric %q missing from the scrape (removal breaks dashboards; update the allowlist if intentional)", name))
		}
	}
	sort.Strings(problems)
	return problems
}
