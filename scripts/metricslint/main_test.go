package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const goodScrape = `# HELP pmaxentd_requests_total requests served
# TYPE pmaxentd_requests_total counter
pmaxentd_requests_total 42
# HELP pmaxentd_inflight requests currently executing
# TYPE pmaxentd_inflight gauge
pmaxentd_inflight 2
# HELP pmaxentd_build_info build metadata as labels
# TYPE pmaxentd_build_info gauge
pmaxentd_build_info{commit="abc",version="(devel)"} 1
# HELP pmaxentd_solve_duration_seconds wall time per solve
# TYPE pmaxentd_solve_duration_seconds histogram
pmaxentd_solve_duration_seconds_bucket{le="0.001"} 1
pmaxentd_solve_duration_seconds_bucket{le="+Inf"} 3
pmaxentd_solve_duration_seconds_sum 0.5
pmaxentd_solve_duration_seconds_count 3
# HELP pmaxent_solve_iterations dual ascent iterations per solve
# TYPE pmaxent_solve_iterations histogram
pmaxent_solve_iterations_bucket{le="+Inf"} 3
pmaxent_solve_iterations_sum 40
pmaxent_solve_iterations_count 3
go_goroutines 7
`

func allowOf(names ...string) *allowlist {
	a := &allowlist{names: make(map[string]bool), countHist: make(map[string]bool)}
	for _, n := range names {
		name, annot, _ := strings.Cut(n, " ")
		a.names[name] = true
		if annot == "count" {
			a.countHist[name] = true
		}
	}
	return a
}

func goodAllow() *allowlist {
	return allowOf("pmaxentd_requests_total", "pmaxentd_inflight",
		"pmaxentd_build_info", "pmaxentd_solve_duration_seconds",
		"pmaxent_solve_iterations count")
}

func TestFamiliesFoldsHistogramSuffixes(t *testing.T) {
	fams := families(goodScrape)
	fi := fams["pmaxentd_solve_duration_seconds"]
	if fi == nil {
		t.Fatal("histogram family not folded from its _bucket/_sum/_count samples")
	}
	if fi.typ != "histogram" || !fi.hasHelp {
		t.Errorf("histogram family info = %+v, want histogram with help", fi)
	}
	for _, leaked := range []string{
		"pmaxentd_solve_duration_seconds_bucket",
		"pmaxentd_solve_duration_seconds_sum",
		"pmaxentd_solve_duration_seconds_count",
	} {
		if fams[leaked] != nil {
			t.Errorf("suffix %q leaked as its own family", leaked)
		}
	}
	if fams["pmaxentd_build_info"] == nil {
		t.Error("labeled gauge family missing")
	}
}

func TestLintClean(t *testing.T) {
	if problems := lint(goodScrape, goodAllow()); len(problems) != 0 {
		t.Errorf("clean scrape reported problems: %v", problems)
	}
}

func TestLintMissingFromScrape(t *testing.T) {
	allow := goodAllow()
	allow.names["pmaxentd_vanished_total"] = true
	problems := lint(goodScrape, allow)
	if len(problems) != 1 || !strings.Contains(problems[0], "pmaxentd_vanished_total") {
		t.Errorf("want one missing-from-scrape problem, got %v", problems)
	}
}

func TestLintUnlistedMetric(t *testing.T) {
	allow := goodAllow()
	delete(allow.names, "pmaxentd_build_info")
	problems := lint(goodScrape, allow)
	if len(problems) != 1 || !strings.Contains(problems[0], "pmaxentd_build_info") {
		t.Errorf("want one not-in-allowlist problem, got %v", problems)
	}
}

func TestLintBadName(t *testing.T) {
	scrape := `# HELP pmaxentd_BadName oops
# TYPE pmaxentd_BadName gauge
pmaxentd_BadName 1
`
	allow := allowOf("pmaxentd_BadName")
	problems := lint(scrape, allow)
	if len(problems) != 1 || !strings.Contains(problems[0], "naming convention") {
		t.Errorf("want one naming-convention problem, got %v", problems)
	}
}

func TestLintMissingHelp(t *testing.T) {
	scrape := `# TYPE pmaxentd_inflight gauge
pmaxentd_inflight 2
`
	problems := lint(scrape, allowOf("pmaxentd_inflight"))
	if len(problems) != 1 || !strings.Contains(problems[0], "HELP") {
		t.Errorf("want one missing-HELP problem, got %v", problems)
	}
}

func TestLintEmptyHelpCounts_AsMissing(t *testing.T) {
	scrape := `# HELP pmaxentd_inflight
# TYPE pmaxentd_inflight gauge
pmaxentd_inflight 2
`
	problems := lint(scrape, allowOf("pmaxentd_inflight"))
	if len(problems) != 1 || !strings.Contains(problems[0], "HELP") {
		t.Errorf("empty HELP text should count as missing, got %v", problems)
	}
}

func TestLintCounterSuffix(t *testing.T) {
	scrape := `# HELP pmaxentd_shed how many requests were shed
# TYPE pmaxentd_shed counter
pmaxentd_shed 3
`
	problems := lint(scrape, allowOf("pmaxentd_shed"))
	if len(problems) != 1 || !strings.Contains(problems[0], "_total") {
		t.Errorf("want one counter-suffix problem, got %v", problems)
	}
}

func TestLintHistogramSuffix(t *testing.T) {
	scrape := `# HELP pmaxentd_solve_latency solve latency
# TYPE pmaxentd_solve_latency histogram
pmaxentd_solve_latency_bucket{le="+Inf"} 1
pmaxentd_solve_latency_sum 1
pmaxentd_solve_latency_count 1
`
	problems := lint(scrape, allowOf("pmaxentd_solve_latency"))
	if len(problems) != 1 || !strings.Contains(problems[0], "unit suffix") {
		t.Errorf("want one histogram-suffix problem, got %v", problems)
	}
	// The same scrape with a "count" annotation is clean: dimensionless
	// count histograms are exempt.
	if problems := lint(scrape, allowOf("pmaxentd_solve_latency count")); len(problems) != 0 {
		t.Errorf("count-annotated histogram should be exempt, got %v", problems)
	}
}

func TestLintIgnoresForeignFamilies(t *testing.T) {
	if problems := lint("go_goroutines 7\nprocess_cpu_seconds_total 1\n",
		allowOf()); len(problems) != 0 {
		t.Errorf("non-pmaxentd families should be ignored, got %v", problems)
	}
}

func TestReadAllowlistAnnotations(t *testing.T) {
	path := filepath.Join(t.TempDir(), "allow.txt")
	const body = `# comment
pmaxentd_requests_total

pmaxent_solve_iterations count
`
	if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
		t.Fatal(err)
	}
	allow, err := readAllowlist(path)
	if err != nil {
		t.Fatal(err)
	}
	if !allow.names["pmaxentd_requests_total"] || !allow.names["pmaxent_solve_iterations"] {
		t.Errorf("names not parsed: %+v", allow.names)
	}
	if allow.countHist["pmaxentd_requests_total"] || !allow.countHist["pmaxent_solve_iterations"] {
		t.Errorf("count annotation misparsed: %+v", allow.countHist)
	}
}

func TestReadAllowlistRejectsUnknownAnnotation(t *testing.T) {
	path := filepath.Join(t.TempDir(), "allow.txt")
	if err := os.WriteFile(path, []byte("pmaxentd_x gadget\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := readAllowlist(path); err == nil {
		t.Error("unknown annotation should be rejected")
	}
}

// TestRepoAllowlistMatchesConventions lints the checked-in allowlist
// itself: every entry must satisfy the naming regexp, so a typo in the
// file fails here instead of only at scrape time.
func TestRepoAllowlistMatchesConventions(t *testing.T) {
	allow, err := readAllowlist("allowlist.txt")
	if err != nil {
		t.Fatal(err)
	}
	for name := range allow.names {
		if !nameRE.MatchString(name) {
			t.Errorf("allowlist entry %q violates naming convention", name)
		}
		if !ours(name) {
			t.Errorf("allowlist entry %q is outside the pmaxent/pmaxentd namespace", name)
		}
	}
}
