package main

import (
	"strings"
	"testing"
)

const goodScrape = `# HELP pmaxentd_requests_total requests served
# TYPE pmaxentd_requests_total counter
pmaxentd_requests_total 42
# TYPE pmaxentd_inflight gauge
pmaxentd_inflight 2
# TYPE pmaxentd_build_info gauge
pmaxentd_build_info{commit="abc",version="(devel)"} 1
# TYPE pmaxentd_solve_duration_seconds histogram
pmaxentd_solve_duration_seconds_bucket{le="0.001"} 1
pmaxentd_solve_duration_seconds_bucket{le="+Inf"} 3
pmaxentd_solve_duration_seconds_sum 0.5
pmaxentd_solve_duration_seconds_count 3
go_goroutines 7
`

func allowOf(names ...string) map[string]bool {
	m := make(map[string]bool, len(names))
	for _, n := range names {
		m[n] = true
	}
	return m
}

func TestFamiliesFoldsHistogramSuffixes(t *testing.T) {
	fams := families(goodScrape)
	if !fams["pmaxentd_solve_duration_seconds"] {
		t.Error("histogram family not folded from its _bucket/_sum/_count samples")
	}
	for _, leaked := range []string{
		"pmaxentd_solve_duration_seconds_bucket",
		"pmaxentd_solve_duration_seconds_sum",
		"pmaxentd_solve_duration_seconds_count",
	} {
		if fams[leaked] {
			t.Errorf("suffix %q leaked as its own family", leaked)
		}
	}
	if !fams["pmaxentd_build_info"] {
		t.Error("labeled gauge family missing")
	}
}

func TestLintClean(t *testing.T) {
	allow := allowOf("pmaxentd_requests_total", "pmaxentd_inflight",
		"pmaxentd_build_info", "pmaxentd_solve_duration_seconds")
	if problems := lint(goodScrape, allow); len(problems) != 0 {
		t.Errorf("clean scrape reported problems: %v", problems)
	}
}

func TestLintMissingFromScrape(t *testing.T) {
	allow := allowOf("pmaxentd_requests_total", "pmaxentd_inflight",
		"pmaxentd_build_info", "pmaxentd_solve_duration_seconds",
		"pmaxentd_vanished_total")
	problems := lint(goodScrape, allow)
	if len(problems) != 1 || !strings.Contains(problems[0], "pmaxentd_vanished_total") {
		t.Errorf("want one missing-from-scrape problem, got %v", problems)
	}
}

func TestLintUnlistedMetric(t *testing.T) {
	allow := allowOf("pmaxentd_requests_total", "pmaxentd_inflight",
		"pmaxentd_solve_duration_seconds")
	problems := lint(goodScrape, allow)
	if len(problems) != 1 || !strings.Contains(problems[0], "pmaxentd_build_info") {
		t.Errorf("want one not-in-allowlist problem, got %v", problems)
	}
}

func TestLintBadName(t *testing.T) {
	scrape := "pmaxentd_BadName 1\npmaxentd_requests_total 2\n"
	allow := allowOf("pmaxentd_requests_total", "pmaxentd_BadName")
	problems := lint(scrape, allow)
	if len(problems) != 1 || !strings.Contains(problems[0], "naming convention") {
		t.Errorf("want one naming-convention problem, got %v", problems)
	}
}

func TestLintIgnoresForeignFamilies(t *testing.T) {
	if problems := lint("go_goroutines 7\nprocess_cpu_seconds_total 1\n",
		allowOf()); len(problems) != 0 {
		t.Errorf("non-pmaxentd families should be ignored, got %v", problems)
	}
}
