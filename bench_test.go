package privacymaxent

// Benchmarks regenerating every figure in the paper's evaluation
// (Sec. 7), plus micro-benchmarks for the pipeline stages and the two
// ablations DESIGN.md calls out. Figure benches run a full scaled-down
// sweep per iteration; run
//
//	go test -bench=. -benchmem
//
// and see EXPERIMENTS.md for the paper-vs-measured comparison. cmd/
// experiments prints the same series at configurable (full paper) sizes.

import (
	"bytes"
	"fmt"
	"net/http/httptest"
	"os"
	"strconv"
	"strings"
	"testing"

	"privacymaxent/internal/adult"
	"privacymaxent/internal/constraint"
	"privacymaxent/internal/core"
	"privacymaxent/internal/experiments"
	"privacymaxent/internal/individuals"
	"privacymaxent/internal/maxent"
	"privacymaxent/internal/server"
)

// kernelWorkersEnv reads PMAXENT_KERNEL_WORKERS, the knob scripts/benchab
// uses to A/B serial kernels (-1) against sharded ones on the same tree.
// Unset or unparsable means 0: inherit the solve's worker count.
var kernelWorkersEnv = func() int {
	v, err := strconv.Atoi(os.Getenv("PMAXENT_KERNEL_WORKERS"))
	if err != nil {
		return 0
	}
	return v
}()

// reduceEnv reads PMAXENT_REDUCE: "1" turns on the structural presolve
// (maxent.Options.Reduce) so scripts/benchab can A/B the block-structure
// elimination against the full dual on the same tree.
var reduceEnv = os.Getenv("PMAXENT_REDUCE") == "1"

// fastMathEnv reads PMAXENT_FAST_MATH: "1" switches the dual kernels to
// the reassociated multi-accumulator flavours (maxent.Options.FastMath).
var fastMathEnv = os.Getenv("PMAXENT_FAST_MATH") == "1"

// deltaEnv reads PMAXENT_DELTA: "1" routes BenchmarkDeltaResolve through
// maxent.SolveDelta against the pre-solved baseline, so scripts/benchab
// can A/B a 1-rule incremental re-solve against the cold solve of the
// same system.
var deltaEnv = os.Getenv("PMAXENT_DELTA") == "1"

// benchConfig is the scaled-down workload shared by the figure benches:
// 2000 records → 400 buckets of five at 5-diversity (paper: 14,210 →
// 2,842).
var benchConfig = experiments.Config{Records: 2000, Seed: 1, MaxRuleSize: 2,
	KernelWorkers: kernelWorkersEnv, Reduce: reduceEnv, FastMath: fastMathEnv}

// benchInstance caches the generated workload across benchmarks; data
// generation and rule mining are benchmarked separately.
var benchInstance *experiments.Instance

func getInstance(b *testing.B) *experiments.Instance {
	b.Helper()
	if benchInstance == nil {
		in, err := experiments.NewInstance(benchConfig)
		if err != nil {
			b.Fatal(err)
		}
		benchInstance = in
	}
	return benchInstance
}

// BenchmarkFigure5 regenerates Figure 5: estimation accuracy vs K for
// the K−, K+ and (K+, K−) curves.
func BenchmarkFigure5(b *testing.B) {
	in := getInstance(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Figure5(in); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure6 regenerates Figure 6 (restricted to T = 1..3 so a
// single iteration stays in benchmark territory; cmd/experiments runs
// the full T = 1..8 panels).
func BenchmarkFigure6(b *testing.B) {
	in := getInstance(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Figure6(in, 3); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure7a regenerates Figure 7(a): solver cost vs number of
// background-knowledge constraints.
func BenchmarkFigure7a(b *testing.B) {
	in := getInstance(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Figure7a(in); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure7b regenerates Figure 7(b): running time vs number of
// buckets for several knowledge budgets (7(c), the iteration counterpart,
// comes from the same sweep and is benchmarked by BenchmarkFigure7c).
func BenchmarkFigure7b(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, _, err := experiments.Figure7bc(benchConfig, []int{50, 100, 200}, []int{0, 100}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure7c regenerates Figure 7(c): iterations vs number of
// buckets. The sweep is shared with 7(b); benchmarked separately so the
// two figure IDs both have a regenerator.
func BenchmarkFigure7c(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, _, err := experiments.Figure7bc(benchConfig, []int{50, 100, 200}, []int{0, 100, 500}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAlgorithmComparison is the Malouf-style solver ablation
// (Sec. 3.3): LBFGS vs GIS vs steepest descent vs Newton.
func BenchmarkAlgorithmComparison(b *testing.B) {
	in := getInstance(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.CompareAlgorithms(in, 50, nil); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDecompositionAblation measures the Sec. 5.5 irrelevant-bucket
// optimization on/off.
func BenchmarkDecompositionAblation(b *testing.B) {
	in := getInstance(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.CompareDecomposition(in, 20); err != nil {
			b.Fatal(err)
		}
	}
}

// --- pipeline stage micro-benchmarks ---

// BenchmarkGenerateAdult measures the synthetic data substrate.
func BenchmarkGenerateAdult(b *testing.B) {
	for i := 0; i < b.N; i++ {
		adult.Generate(adult.Config{Records: 2000, Seed: int64(i + 1)})
	}
}

// BenchmarkAnatomize measures 5-diversity bucketization.
func BenchmarkAnatomize(b *testing.B) {
	tbl := adult.Generate(adult.Config{Records: 2000, Seed: 1})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := Anatomize(tbl, BucketOptions{L: 5, ExemptMostFrequent: true}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMineRules measures association-rule mining (subset sizes 1-2).
func BenchmarkMineRules(b *testing.B) {
	tbl := adult.Generate(adult.Config{Records: 2000, Seed: 1})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := MineRules(tbl, MineOptions{MinSupport: 3, Sizes: []int{1, 2}}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSolveNoKnowledge measures the full MaxEnt solve with data
// invariants only (Theorem 5 territory: presolve + closed form dominate).
func BenchmarkSolveNoKnowledge(b *testing.B) {
	in := getInstance(b)
	sp := constraint.NewSpace(in.Data)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sys := constraint.DataInvariants(sp, constraint.InvariantOptions{DropRedundant: true})
		if _, err := maxent.Solve(sys, maxent.Options{KernelWorkers: kernelWorkersEnv, Reduce: reduceEnv, FastMath: fastMathEnv}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSolveWithKnowledge measures the dual solve with a Top-100
// mixed knowledge bound, decomposition on.
func BenchmarkSolveWithKnowledge(b *testing.B) {
	in := getInstance(b)
	sp := constraint.NewSpace(in.Data)
	selected := TopK(in.Rules, 50, 50)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sys := constraint.DataInvariants(sp, constraint.InvariantOptions{DropRedundant: true})
		for j := range selected {
			kn := selected[j].Knowledge()
			c, err := kn.Constraint(sp)
			if err != nil {
				b.Fatal(err)
			}
			if err := sys.Add(c); err != nil {
				b.Fatal(err)
			}
		}
		if _, err := maxent.Solve(sys, maxent.Options{Decompose: true, KernelWorkers: kernelWorkersEnv, Reduce: reduceEnv, FastMath: fastMathEnv}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkReducedSolve sweeps the structural presolve across untouched
// fractions. Each sub-bench plants one synthetic bucket-local knowledge
// row per touched bucket (feasible by construction: RHS is the row's
// value under the closed-form posterior) and solves the whole system
// non-decomposed, so the dual dimension the numeric core sees is set
// entirely by how many buckets the knowledge touches. With
// PMAXENT_REDUCE=1 the untouched buckets are closed-formed and the
// touched buckets' invariant rows are Schur-eliminated; without it the
// full dual solves every surviving row.
func BenchmarkReducedSolve(b *testing.B) {
	in := getInstance(b)
	sp := constraint.NewSpace(in.Data)
	uniform := maxent.Uniform(sp)
	byBucket := make([][]int, in.Data.NumBuckets())
	for id := 0; id < sp.Len(); id++ {
		bk := sp.Term(id).Bucket
		byBucket[bk] = append(byBucket[bk], id)
	}
	for _, untouched := range []int{0, 50, 95} {
		nTouched := len(byBucket) * (100 - untouched) / 100
		b.Run(fmt.Sprintf("untouched=%d%%", untouched), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				sys := constraint.DataInvariants(sp, constraint.InvariantOptions{DropRedundant: true})
				for bk := 0; bk < nTouched; bk++ {
					terms := byBucket[bk]
					coeffs := make([]float64, len(terms))
					var rhs float64
					for k, id := range terms {
						coeffs[k] = float64(1 + k%2)
						rhs += coeffs[k] * uniform[id]
					}
					c := constraint.Constraint{
						Kind:   constraint.Knowledge,
						Label:  fmt.Sprintf("bench-touch-%d", bk),
						Terms:  terms,
						Coeffs: coeffs,
						RHS:    rhs,
					}
					if err := sys.Add(c); err != nil {
						b.Fatal(err)
					}
				}
				sol, err := maxent.Solve(sys, maxent.Options{KernelWorkers: kernelWorkersEnv, Reduce: reduceEnv, FastMath: fastMathEnv})
				if err != nil {
					b.Fatal(err)
				}
				if sol.Stats.MaxViolation > 1e-6 {
					b.Fatalf("untouched=%d%%: infeasible solve: %s", untouched, sol.Stats)
				}
			}
		})
	}
}

// BenchmarkSolveWarmStarted measures the per-grid-point cost of a warmed
// sweep: the same Top-100 solve as BenchmarkSolveWithKnowledge, but the
// invariant base is built once (cloned per iteration) and the solve is
// seeded with the duals of a previous converged solve.
func BenchmarkSolveWarmStarted(b *testing.B) {
	in := getInstance(b)
	sp := constraint.NewSpace(in.Data)
	selected := TopK(in.Rules, 50, 50)
	base := constraint.DataInvariants(sp, constraint.InvariantOptions{DropRedundant: true})
	for j := range selected {
		kn := selected[j].Knowledge()
		c, err := kn.Constraint(sp)
		if err != nil {
			b.Fatal(err)
		}
		if err := base.Add(c); err != nil {
			b.Fatal(err)
		}
	}
	seed, err := maxent.Solve(base, maxent.Options{Decompose: true})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sys := base.Clone()
		if _, err := maxent.Solve(sys, maxent.Options{Decompose: true, WarmStart: seed.Duals, KernelWorkers: kernelWorkersEnv, Reduce: reduceEnv, FastMath: fastMathEnv}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDeltaResolve measures a 1-rule re-publication: the invariant
// base plus Top-(25,25) knowledge minus its top rule is solved once
// outside the timer (the state a serving cache would hold), then each
// iteration assembles the full system and re-solves it. With
// PMAXENT_DELTA=1 the re-solve goes through maxent.SolveDelta — clean
// components reuse the baseline posterior verbatim, only the component
// the added rule touches is re-solved — and without it the whole system
// solves cold, so the A/B isolates exactly what an incremental
// re-publication saves. Top-(25,25) rather than the Top-(50,50) of
// BenchmarkSolveWithKnowledge: the smaller bound keeps the conditioned
// system in several connected components (the larger bound couples
// everything into one, leaving a delta nothing to reuse) and lets the
// baseline converge, which the delta path requires.
func BenchmarkDeltaResolve(b *testing.B) {
	in := getInstance(b)
	sp := constraint.NewSpace(in.Data)
	selected := TopK(in.Rules, 25, 25)
	base := constraint.DataInvariants(sp, constraint.InvariantOptions{DropRedundant: true})
	for j := 1; j < len(selected); j++ {
		kn := selected[j].Knowledge()
		c, err := kn.Constraint(sp)
		if err != nil {
			b.Fatal(err)
		}
		if err := base.Add(c); err != nil {
			b.Fatal(err)
		}
	}
	opts := maxent.Options{Decompose: true, KernelWorkers: kernelWorkersEnv, Reduce: reduceEnv, FastMath: fastMathEnv}
	// The baseline needs ~600 LBFGS iterations; the default cap would
	// leave it unconverged and unusable as a delta ancestor.
	opts.Solver.MaxIterations = 5000
	baseline, err := maxent.Solve(base, opts)
	if err != nil {
		b.Fatal(err)
	}
	if !baseline.Stats.Converged {
		b.Fatalf("baseline did not converge: %s", baseline.Stats.String())
	}
	kn := selected[0].Knowledge()
	added, err := kn.Constraint(sp)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sys := base.Clone()
		if err := sys.Add(added); err != nil {
			b.Fatal(err)
		}
		if deltaEnv {
			sol, err := maxent.SolveDelta(sys, &maxent.Baseline{Sys: base, Sol: baseline}, opts)
			if err != nil {
				b.Fatal(err)
			}
			if sol.Stats.ReusedComponents == 0 {
				b.Fatal("delta solve reused no components — it fell back to a cold solve")
			}
		} else {
			if _, err := maxent.Solve(sys, opts); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkPosterior measures folding the joint into P(S|Q).
func BenchmarkPosterior(b *testing.B) {
	in := getInstance(b)
	sp := constraint.NewSpace(in.Data)
	sys := constraint.DataInvariants(sp, constraint.InvariantOptions{DropRedundant: true})
	sol, err := maxent.Solve(sys, maxent.Options{})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sol.Posterior()
	}
}

// BenchmarkEstimationAccuracy measures the Sec. 7.1 metric.
func BenchmarkEstimationAccuracy(b *testing.B) {
	in := getInstance(b)
	sp := constraint.NewSpace(in.Data)
	sys := constraint.DataInvariants(sp, constraint.InvariantOptions{DropRedundant: true})
	sol, err := maxent.Solve(sys, maxent.Options{})
	if err != nil {
		b.Fatal(err)
	}
	post := sol.Posterior()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := EstimationAccuracy(in.Truth, post); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMineRulesParallel measures mining with worker goroutines (the
// rule pool is identical to the sequential one).
func BenchmarkMineRulesParallel(b *testing.B) {
	tbl := adult.Generate(adult.Config{Records: 2000, Seed: 1})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := MineRules(tbl, MineOptions{MinSupport: 3, Sizes: []int{1, 2}, Workers: 8}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSolveParallelComponents measures the component-parallel solve
// against BenchmarkSolveWithKnowledge's sequential baseline.
func BenchmarkSolveParallelComponents(b *testing.B) {
	in := getInstance(b)
	sp := constraint.NewSpace(in.Data)
	selected := TopK(in.Rules, 50, 50)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sys := constraint.DataInvariants(sp, constraint.InvariantOptions{DropRedundant: true})
		for j := range selected {
			kn := selected[j].Knowledge()
			c, err := kn.Constraint(sp)
			if err != nil {
				b.Fatal(err)
			}
			if err := sys.Add(c); err != nil {
				b.Fatal(err)
			}
		}
		if _, err := maxent.Solve(sys, maxent.Options{Decompose: true, Workers: 8, KernelWorkers: kernelWorkersEnv, Reduce: reduceEnv, FastMath: fastMathEnv}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkIndividualsSolve measures the Sec. 6 pseudonym model on the
// bench workload's first knowledge statement.
func BenchmarkIndividualsSolve(b *testing.B) {
	in := getInstance(b)
	sp := individuals.NewSpace(in.Data)
	k := individuals.ValueProbability{Person: individuals.Person{QID: 0}, SAs: []int{0}, P: 0.2}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := individuals.Solve(sp, []individuals.Knowledge{k}, maxent.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkInequalitySolve measures the Sec. 4.5 box-constrained dual on
// a Top-20 vague bound.
func BenchmarkInequalitySolve(b *testing.B) {
	in := getInstance(b)
	sp := constraint.NewSpace(in.Data)
	selected := TopK(in.Rules, 10, 10)
	var ineqs []maxent.Inequality
	for i := range selected {
		kn := selected[i].Knowledge()
		iq, err := maxent.VagueKnowledge(sp, kn, 0.1)
		if err != nil {
			b.Fatal(err)
		}
		ineqs = append(ineqs, iq)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sys := constraint.DataInvariants(sp, constraint.InvariantOptions{DropRedundant: true})
		if _, err := maxent.SolveWithInequalities(sys, ineqs, maxent.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkServerQuantify measures a full POST /v1/quantify round-trip
// through the pmaxentd server on the bench workload with a Top-(10,10)
// knowledge bound. By default the server is shared across iterations, so
// after the first request the prepared-invariant cache and warm-start
// duals are hot — the steady state of a service quantifying one
// publication repeatedly. Set PMAXENT_SERVER_COLD=1 (scripts/benchab's
// -seed-env knob) to build a fresh server every iteration instead and
// measure the cold path for an A/B of the cache's worth.
func BenchmarkServerQuantify(b *testing.B) {
	in := getInstance(b)
	var pub bytes.Buffer
	if err := WritePublishedJSON(&pub, in.Data); err != nil {
		b.Fatal(err)
	}
	selected := TopK(in.Rules, 10, 10)
	knowledge := make([]DistributionKnowledge, len(selected))
	for i := range selected {
		knowledge[i] = selected[i].Knowledge()
	}
	var kjson bytes.Buffer
	if err := WriteKnowledgeJSON(&kjson, in.Data.Schema(), knowledge); err != nil {
		b.Fatal(err)
	}
	body := fmt.Sprintf(`{"published": %s, "knowledge": %s}`, pub.String(), kjson.String())

	cold := os.Getenv("PMAXENT_SERVER_COLD") == "1"
	cfg := server.Config{Pipeline: core.Config{Solve: maxent.Options{KernelWorkers: kernelWorkersEnv, Reduce: reduceEnv, FastMath: fastMathEnv}}}
	srv := server.New(cfg)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if cold {
			srv = server.New(cfg)
		}
		req := httptest.NewRequest("POST", "/v1/quantify", strings.NewReader(body))
		w := httptest.NewRecorder()
		srv.ServeHTTP(w, req)
		if w.Code != 200 {
			b.Fatalf("status %d: %s", w.Code, w.Body.String())
		}
	}
}
