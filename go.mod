module privacymaxent

go 1.22
