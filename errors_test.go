package privacymaxent

import (
	"context"
	"errors"
	"strings"
	"testing"

	"privacymaxent/internal/bucket"
	"privacymaxent/internal/dataset"
)

// TestErrorTaxonomy exercises the exported sentinels through public
// entry points only: every failure class must be classifiable with
// errors.Is, never by string matching.
func TestErrorTaxonomy(t *testing.T) {
	t.Run("invalid schema: duplicate attribute", func(t *testing.T) {
		a := NewAttribute("X", QuasiIdentifier, []string{"a"})
		b := NewAttribute("X", Sensitive, []string{"s"})
		_, err := NewSchema(a, b)
		if !errors.Is(err, ErrInvalidSchema) {
			t.Fatalf("err = %v, want ErrInvalidSchema", err)
		}
	})

	t.Run("invalid schema: two sensitive attributes", func(t *testing.T) {
		a := NewAttribute("A", Sensitive, []string{"a"})
		b := NewAttribute("B", Sensitive, []string{"s"})
		_, err := NewSchema(a, b)
		if !errors.Is(err, ErrInvalidSchema) {
			t.Fatalf("err = %v, want ErrInvalidSchema", err)
		}
	})

	t.Run("no sensitive attribute", func(t *testing.T) {
		qi := NewAttribute("Q", QuasiIdentifier, []string{"a", "b"})
		schema, err := NewSchema(qi)
		if err != nil {
			t.Fatal(err)
		}
		tbl := NewTable(schema)
		tbl.MustAppend("a")
		_, err = MineRules(tbl, MineOptions{MinSupport: 1})
		if !errors.Is(err, ErrNoSensitiveAttribute) {
			t.Fatalf("mine err = %v, want ErrNoSensitiveAttribute", err)
		}
		_, err = TrueConditional(tbl, NewUniverse(tbl))
		if !errors.Is(err, ErrNoSensitiveAttribute) {
			t.Fatalf("truth err = %v, want ErrNoSensitiveAttribute", err)
		}
	})

	t.Run("prepare rejects SA-less view", func(t *testing.T) {
		q := New(Config{})
		_, err := q.Prepare(context.Background(), nil)
		if !errors.Is(err, ErrInvalidSchema) {
			t.Fatalf("nil prepare err = %v, want ErrInvalidSchema", err)
		}
	})

	t.Run("infeasible knowledge", func(t *testing.T) {
		d, err := bucket.FromPartition(dataset.PaperExample(), dataset.PaperBuckets())
		if err != nil {
			t.Fatal(err)
		}
		// Zero out every disease for males; males exist, so the bucket
		// invariants cannot be met.
		stmts := `[
			{"if": {"Gender": "male"}, "then": "Breast Cancer", "p": 0},
			{"if": {"Gender": "male"}, "then": "Flu", "p": 0},
			{"if": {"Gender": "male"}, "then": "Pneumonia", "p": 0},
			{"if": {"Gender": "male"}, "then": "HIV", "p": 0},
			{"if": {"Gender": "male"}, "then": "Lung Cancer", "p": 0}]`
		knowledge, err := ParseKnowledgeJSON(strings.NewReader(stmts), d.Schema())
		if err != nil {
			t.Fatal(err)
		}
		q := New(Config{})
		_, err = q.Quantify(d, knowledge, nil)
		if !errors.Is(err, ErrInfeasible) {
			t.Fatalf("err = %v, want ErrInfeasible", err)
		}
	})

	t.Run("interrupted solve", func(t *testing.T) {
		d, err := bucket.FromPartition(dataset.PaperExample(), dataset.PaperBuckets())
		if err != nil {
			t.Fatal(err)
		}
		// Non-degenerate knowledge forces an iterative solve (pure
		// invariants can be fully pinned by presolve, which never
		// reaches a context check).
		knowledge, err := ParseKnowledgeJSON(strings.NewReader(
			`[{"if": {"Gender": "male"}, "then": "Flu", "p": 0.4}]`), d.Schema())
		if err != nil {
			t.Fatal(err)
		}
		ctx, cancel := context.WithCancel(context.Background())
		cancel()
		q := New(Config{})
		_, err = q.QuantifyContext(ctx, d, knowledge, nil)
		if !errors.Is(err, ErrInterrupted) {
			t.Fatalf("err = %v, want ErrInterrupted", err)
		}
	})
}
