// Package privacymaxent is a Go implementation of Privacy-MaxEnt (Du,
// Teng, Zhu — SIGMOD 2008): a systematic method for integrating adversary
// background knowledge into the privacy quantification of bucketized
// microdata publishing.
//
// The pipeline treats every joint probability P(Q, S, B) — quasi-
// identifier value, sensitive value, bucket — as an unknown, derives the
// complete set of linear invariant equations the published data imposes,
// adds background knowledge (association rules over the data
// distribution, or statements about individuals) as further linear
// constraints, and picks the maximum-entropy distribution satisfying all
// of them. The resulting posterior P(S | Q) is the most unbiased estimate
// of what a bounded adversary can infer, and feeds the privacy scores in
// Report.
//
// Quick start:
//
//	q := privacymaxent.New(privacymaxent.Config{})
//	report, err := q.Run(table, privacymaxent.Bound{KPos: 50, KNeg: 50})
//
// This facade re-exports the library's public surface; the
// implementation lives under internal/ (dataset, bucket, assoc,
// constraint, maxent, metrics, core, individuals, experiments).
package privacymaxent

import (
	"context"
	"io"

	"privacymaxent/internal/assoc"
	"privacymaxent/internal/bucket"
	"privacymaxent/internal/constraint"
	"privacymaxent/internal/core"
	"privacymaxent/internal/dataset"
	"privacymaxent/internal/generalize"
	"privacymaxent/internal/maxent"
	"privacymaxent/internal/metrics"
	"privacymaxent/internal/randomize"
	"privacymaxent/internal/scheme"
	"privacymaxent/internal/solver"
	"privacymaxent/internal/telemetry"
	"privacymaxent/internal/worstcase"
)

// Data model (see internal/dataset).
type (
	// Attribute is a categorical column with a privacy role.
	Attribute = dataset.Attribute
	// Role classifies attributes as ID, QI or SA.
	Role = dataset.Role
	// Schema is an ordered set of attributes with exactly one SA.
	Schema = dataset.Schema
	// Table is an encoded microdata table.
	Table = dataset.Table
	// Universe indexes the distinct QI tuples of a table.
	Universe = dataset.Universe
	// Conditional is a P(S | Q) distribution.
	Conditional = dataset.Conditional
)

// Attribute roles.
const (
	Identifier      = dataset.Identifier
	QuasiIdentifier = dataset.QuasiIdentifier
	Sensitive       = dataset.Sensitive
)

// Publishing substrate (see internal/bucket).
type (
	// Bucketized is the published view D′.
	Bucketized = bucket.Bucketized
	// BucketOptions configures the Anatomy bucketizer.
	BucketOptions = bucket.Options
)

// Background knowledge (see internal/assoc and internal/constraint).
type (
	// Rule is a positive or negative association rule Qv ⇒ s / Qv ⇒ ¬s.
	Rule = assoc.Rule
	// MineOptions configures rule mining.
	MineOptions = assoc.Options
	// DistributionKnowledge is a P(S | Qv) = p statement.
	DistributionKnowledge = constraint.DistributionKnowledge
)

// Solver (see internal/maxent and internal/solver).
type (
	// SolveOptions configures the MaxEnt solve (including
	// SolveOptions.WarmStart, a []ConstraintDual seed from a previous
	// similar solve).
	SolveOptions = maxent.Options
	// SolverOptions tunes the numerical optimizer.
	SolverOptions = solver.Options
	// Algorithm selects the dual method (LBFGS, GIS, ...).
	Algorithm = maxent.Algorithm
	// ConstraintDual pairs a constraint label with its Lagrange
	// multiplier at the solution; a slice of them (Report.Solution.Duals)
	// both measures each constraint's influence and serves as the
	// warm-start seed for the next solve of a sweep.
	ConstraintDual = maxent.ConstraintDual
)

// Dual algorithms.
const (
	LBFGS           = maxent.LBFGS
	SteepestDescent = maxent.SteepestDescent
	GIS             = maxent.GIS
	Newton          = maxent.Newton
)

// Pipeline (see internal/core).
type (
	// Config tunes the Privacy-MaxEnt pipeline.
	Config = core.Config
	// Quantifier runs quantifications under one Config.
	Quantifier = core.Quantifier
	// Bound is the Top-(K+, K−) background-knowledge budget.
	Bound = core.Bound
	// Report is the (bound, posterior, privacy scores) outcome.
	Report = core.Report
	// StageTimings is the per-stage wall-clock breakdown in Report.Timings.
	StageTimings = core.Timings
	// Prepared caches the data-invariant base system of a publication so
	// sweeps over many knowledge sets pay the formulation once and can
	// warm-start successive solves. Build one with
	// Quantifier.Prepare(ctx, d) and quantify per-request knowledge with
	// Prepared.QuantifyContext (or QuantifyWithRules for a Top-(K+, K−)
	// Bound); only the knowledge rows are appended per call, onto a
	// copy-on-append overlay of the shared invariant base. A Prepared is
	// safe for concurrent use — the pmaxentd server keeps an LRU cache
	// of them keyed by a digest of the published view.
	Prepared = core.Prepared
)

// Observability (see internal/telemetry). Context-aware entry points —
// Quantifier.RunContext, QuantifyContext, maxent.SolveContext — emit spans
// to the Tracer and series to the Registry installed with WithTracer and
// WithMetrics; without them instrumentation is a no-op.
type (
	// Tracer emits nested spans for every pipeline stage.
	Tracer = telemetry.Tracer
	// Span is one timed operation with attributes.
	Span = telemetry.Span
	// Sink consumes finished span events.
	Sink = telemetry.Sink
	// SpanEvent is a finished span as delivered to a Sink.
	SpanEvent = telemetry.Event
	// Registry collects counters, gauges and histograms.
	Registry = telemetry.Registry
	// TreeSink buffers span events for human-readable tree rendering.
	TreeSink = telemetry.TreeSink
)

// NewTracer creates a tracer emitting to sink.
func NewTracer(sink Sink) *Tracer { return telemetry.NewTracer(sink) }

// NewJSONSink creates a sink writing one JSON object per finished span.
func NewJSONSink(w io.Writer) Sink { return telemetry.NewJSONSink(w) }

// NewTreeSink creates a buffering sink whose WriteTree renders the span
// hierarchy as an indented tree.
func NewTreeSink() *TreeSink { return telemetry.NewTreeSink() }

// NewRegistry creates an empty metrics registry.
func NewRegistry() *Registry { return telemetry.NewRegistry() }

// WithTracer installs a tracer into the context handed to the *Context
// pipeline entry points.
func WithTracer(ctx context.Context, t *Tracer) context.Context {
	return telemetry.WithTracer(ctx, t)
}

// WithMetrics installs a metrics registry into the context handed to the
// *Context pipeline entry points.
func WithMetrics(ctx context.Context, r *Registry) context.Context {
	return telemetry.WithMetrics(ctx, r)
}

// New creates a Quantifier; the zero Config reproduces the paper's
// evaluation setup (5-diversity Anatomy buckets, minimum rule support 3,
// LBFGS with the Sec. 5.5 decomposition).
func New(cfg Config) *Quantifier { return core.New(cfg) }

// NewAttribute builds a categorical attribute.
func NewAttribute(name string, role Role, domain []string) *Attribute {
	return dataset.NewAttribute(name, role, domain)
}

// NewSchema builds a schema, validating roles and name uniqueness.
func NewSchema(attrs ...*Attribute) (*Schema, error) { return dataset.NewSchema(attrs...) }

// NewTable creates an empty table over a schema.
func NewTable(schema *Schema) *Table { return dataset.NewTable(schema) }

// NewUniverse indexes the distinct QI tuples of a table.
func NewUniverse(t *Table) *Universe { return dataset.NewUniverse(t) }

// TrueConditional computes the ground-truth P(S|Q) from original data.
func TrueConditional(t *Table, u *Universe) (*Conditional, error) {
	return dataset.TrueConditional(t, u)
}

// Anatomize publishes a table with the Anatomy bucketizer.
//
// Deprecated: use AnatomyScheme — the PublicationScheme unification
// gives every mechanism the same Publish/Invariants surface, so the
// same mined knowledge and the same solver evaluate Anatomy, Mondrian
// and randomized response interchangeably. Anatomize remains for the
// bucket-group return value (AnatomyScheme.Publish drops it).
func Anatomize(t *Table, opts BucketOptions) (*Bucketized, [][]int, error) {
	return bucket.Anatomize(t, opts)
}

// MineRules mines association rules from original data, strongest first.
// It is a thin wrapper over MineRulesContext with a background context.
func MineRules(t *Table, opts MineOptions) ([]Rule, error) { return assoc.Mine(t, opts) }

// MineRulesContext is MineRules with cancellation and telemetry: mining
// stops once ctx is done, and a tracer installed with WithTracer records
// an "assoc.mine" span.
func MineRulesContext(ctx context.Context, t *Table, opts MineOptions) ([]Rule, error) {
	return assoc.MineContext(ctx, t, opts)
}

// TopK selects the Top-(K+, K−) strongest rules from a sorted rule list.
func TopK(rules []Rule, kPos, kNeg int) []Rule { return assoc.TopK(rules, kPos, kNeg) }

// EstimationAccuracy is the paper's weighted KL distance between the true
// conditional and an estimate (Sec. 7.1); lower means the adversary's
// estimate is closer to the truth.
func EstimationAccuracy(truth, estimate *Conditional) (float64, error) {
	return metrics.EstimationAccuracy(truth, estimate)
}

// MaxDisclosure is the adversary's highest single-link confidence
// max P*(s|q) under an estimated posterior.
func MaxDisclosure(estimate *Conditional) float64 { return metrics.MaxDisclosure(estimate) }

// TCloseness is the t-closeness level of a publication (max earth-mover
// distance between a bucket's SA distribution and the global one).
func TCloseness(d *Bucketized) float64 { return metrics.TCloseness(d) }

// Publication schemes (see internal/scheme): the unified interface every
// disguising mechanism implements — Publish derives the released view
// from the original table, Invariants derives the constraint rows that
// view certifies — so one Quantifier (Quantifier.PrepareScheme) and one
// mined-knowledge format evaluate Anatomy, Mondrian generalization and
// randomized response interchangeably.
type (
	// PublicationScheme is the mechanism interface.
	PublicationScheme = scheme.Scheme
	// AnatomyScheme is bucketization with l distinct SA values per
	// bucket (the identity scheme — its invariants are the classic
	// Theorem 1–3 rows).
	AnatomyScheme = scheme.Anatomy
	// MondrianScheme is Mondrian k-anonymous generalization; its
	// equivalence classes induce the buckets.
	MondrianScheme = scheme.Mondrian
	// RandomizedResponseScheme is uniform randomized response on SA; its
	// invariants include sampling-tolerance boxes, so solves route
	// through the inequality (boxed) dual.
	RandomizedResponseScheme = scheme.RandomizedResponse
	// SchemeDescriptor describes one supported scheme (name, parameter
	// schema, whether its solves are boxed).
	SchemeDescriptor = scheme.Descriptor
)

// NewAnatomyScheme returns an Anatomy scheme with bucket size l
// (l <= 0 selects the default).
func NewAnatomyScheme(l int) AnatomyScheme { return scheme.NewAnatomy(l) }

// NewMondrianScheme returns a Mondrian scheme with anonymity level k
// (k <= 0 selects the default).
func NewMondrianScheme(k int) MondrianScheme { return scheme.NewMondrian(k) }

// NewRandomizedResponseScheme returns a randomized-response scheme with
// retention probability rho and perturbation seed.
func NewRandomizedResponseScheme(rho float64, seed int64) RandomizedResponseScheme {
	return scheme.NewRandomizedResponse(rho, seed)
}

// PublicationSchemes lists the supported schemes with their parameter
// schemas, sorted by name — the same capability listing pmaxentd serves
// on GET /healthz.
func PublicationSchemes() []SchemeDescriptor { return scheme.Describe() }

// Other disguising methods (see internal/generalize, internal/randomize)
// and the deterministic worst-case baseline (internal/worstcase).
type (
	// GeneralizationClass is one Mondrian equivalence class.
	GeneralizationClass = generalize.Class
	// RandomizationMechanism is uniform randomized response on SA.
	RandomizationMechanism = randomize.Mechanism
)

// Generalize publishes the table as Mondrian k-anonymous equivalence
// classes; the returned Bucketized view feeds the same MaxEnt pipeline.
//
// Deprecated: use MondrianScheme, whose Publish returns the same view
// (Generalize remains for the equivalence-class return value) and whose
// Invariants plug the view into Quantifier.PrepareScheme alongside every
// other PublicationScheme.
func Generalize(t *Table, k int) (*Bucketized, []GeneralizationClass, error) {
	return generalize.Publish(t, k)
}

// Randomize publishes the table under randomized response with retention
// probability rho.
//
// Deprecated: use RandomizedResponseScheme, whose Publish perturbs and
// groups in one step and whose Invariants feed the same boxed solve the
// pmaxentd scheme API serves (Randomize remains for access to the raw
// perturbed table and mechanism).
func Randomize(t *Table, rho float64, seed int64) (*Table, RandomizationMechanism, error) {
	return randomize.Perturb(t, rho, seed)
}

// RandomizedPosterior reconstructs the adversary's MaxEnt posterior from
// a randomized publication (z is the sampling-tolerance width; 0 = 3σ).
// It is a thin wrapper over RandomizedPosteriorContext with a background
// context.
func RandomizedPosterior(published *Table, mech RandomizationMechanism, z float64, opts SolveOptions) (*Conditional, error) {
	cond, _, err := randomize.Estimate(published, mech, z, opts)
	return cond, err
}

// RandomizedPosteriorContext is RandomizedPosterior with the context
// threaded into the underlying inequality solve: cancellation interrupts
// the optimizer (ErrInterrupted) and telemetry installed in ctx
// instruments the solve under a "randomize.estimate" span.
func RandomizedPosteriorContext(ctx context.Context, published *Table, mech RandomizationMechanism, z float64, opts SolveOptions) (*Conditional, error) {
	cond, _, err := randomize.EstimateContext(ctx, published, mech, z, opts)
	return cond, err
}

// WorstCaseDisclosure is Martin et al.'s deterministic baseline: the
// maximum posterior reachable with k negative statements about a target's
// bucket. It is a thin wrapper over WorstCaseDisclosureContext with a
// background context.
func WorstCaseDisclosure(d *Bucketized, k int) (float64, error) {
	return worstcase.Disclosure(d, k)
}

// WorstCaseDisclosureContext is WorstCaseDisclosure with cancellation
// (checked between buckets) and a "worstcase.disclosure" telemetry span.
func WorstCaseDisclosureContext(ctx context.Context, d *Bucketized, k int) (float64, error) {
	return worstcase.DisclosureContext(ctx, d, k)
}

// WritePublishedJSON and ReadPublishedJSON (de)serialize the published
// view D′ — exactly the information a bucketized release makes public.
func WritePublishedJSON(w io.Writer, d *Bucketized) error { return bucket.WriteJSON(w, d) }

// ReadPublishedJSON parses a published view written by WritePublishedJSON.
func ReadPublishedJSON(r io.Reader) (*Bucketized, error) { return bucket.ReadJSON(r) }

// ParseKnowledgeJSON and WriteKnowledgeJSON (de)serialize knowledge
// statements ({"if": {...}, "then": "...", "p": 0.3}).
func ParseKnowledgeJSON(r io.Reader, schema *Schema) ([]DistributionKnowledge, error) {
	return constraint.ParseKnowledgeJSON(r, schema)
}

// WriteKnowledgeJSON serializes knowledge statements for audit/replay.
func WriteKnowledgeJSON(w io.Writer, schema *Schema, ks []DistributionKnowledge) error {
	return constraint.WriteKnowledgeJSON(w, schema, ks)
}
